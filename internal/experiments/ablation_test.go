package experiments

import (
	"strings"
	"testing"
)

// TestCoefficientBitsAblation: loss must be monotone non-increasing in the
// width (more bits can only help), negligible at 3 bits (the paper's
// choice), and zero-ish at high widths.
func TestCoefficientBitsAblation(t *testing.T) {
	cfg := testConfig()
	cfg.Bursts = 1000
	r, err := CoefficientBitsAblation(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bits) != 5 {
		t.Fatalf("bits = %v", r.Bits)
	}
	for i := range r.Bits {
		if r.WorstLoss[i] < -1e-9 || r.MeanLoss[i] < -1e-9 {
			t.Fatalf("negative loss at %d bits: quantised encoder beat the optimum", r.Bits[i])
		}
		if r.MeanLoss[i] > r.WorstLoss[i]+1e-12 {
			t.Fatalf("mean loss exceeds worst loss at %d bits", r.Bits[i])
		}
		if i > 0 && r.WorstLoss[i] > r.WorstLoss[i-1]+1e-9 {
			t.Errorf("worst loss grew from %d to %d bits: %.4f%% -> %.4f%%",
				r.Bits[i-1], r.Bits[i], r.WorstLoss[i-1]*100, r.WorstLoss[i]*100)
		}
	}
	// The paper's argument: 3 bits are enough for near-perfect encoding.
	if r.WorstLoss[2] > 0.01 {
		t.Errorf("3-bit worst loss %.3f%% exceeds 1%%", r.WorstLoss[2]*100)
	}
	// 1 bit means alpha = beta always: noticeably worse at skewed ratios.
	if r.WorstLoss[0] < r.WorstLoss[2] {
		t.Errorf("1-bit (%.3f%%) should lose more than 3-bit (%.3f%%)",
			r.WorstLoss[0]*100, r.WorstLoss[2]*100)
	}
	var sb strings.Builder
	if err := r.Table().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Bits") {
		t.Error("table missing header")
	}
}

// TestCoefficientBitsValidation covers the guards.
func TestCoefficientBitsValidation(t *testing.T) {
	if _, err := CoefficientBitsAblation(Config{}, 3); err == nil {
		t.Error("zero config accepted")
	}
	cfg := testConfig()
	if _, err := CoefficientBitsAblation(cfg, 0); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := CoefficientBitsAblation(cfg, 11); err == nil {
		t.Error("11 bits accepted")
	}
}

// TestGreedyGapAblation: the per-byte heuristic is never better than the
// optimum, matches it at the axis ends (where per-byte decisions are
// locally and globally optimal for DC; for AC the greedy transition rule is
// also optimal), and loses a measurable amount in the middle.
func TestGreedyGapAblation(t *testing.T) {
	cfg := testConfig()
	cfg.Bursts = 1500
	r, err := GreedyGapAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range r.Gap {
		if g < -1e-9 {
			t.Fatalf("greedy beat the optimum at alpha=%.2f", r.Alphas[i])
		}
	}
	gap, at := r.MaxGap()
	if gap <= 0.001 {
		t.Errorf("greedy gap %.4f%% implausibly small — the heuristic is not optimal", gap*100)
	}
	if gap > 0.10 {
		t.Errorf("greedy gap %.2f%% implausibly large", gap*100)
	}
	if at <= 0.05 || at >= 0.95 {
		t.Errorf("max gap at alpha=%.2f, expected in the interior", at)
	}
	if _, err := GreedyGapAblation(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

// TestBurstLengthAblation: the optimal advantage grows with burst length
// and is already substantial at BL8.
func TestBurstLengthAblation(t *testing.T) {
	cfg := testConfig()
	cfg.Bursts = 1500
	lengths := []int{2, 4, 8, 16}
	r, err := BurstLengthAblation(cfg, lengths)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Beats) != len(lengths) {
		t.Fatalf("beats = %v", r.Beats)
	}
	for i, adv := range r.Advantage {
		if adv < 0 {
			t.Fatalf("negative advantage at BL%d", r.Beats[i])
		}
	}
	if r.Advantage[2] < 0.04 {
		t.Errorf("BL8 advantage %.2f%% below expectation", r.Advantage[2]*100)
	}
	if r.Advantage[3] < r.Advantage[0] {
		t.Errorf("advantage should grow with burst length: BL2=%.2f%% BL16=%.2f%%",
			r.Advantage[0]*100, r.Advantage[3]*100)
	}
	if _, err := BurstLengthAblation(cfg, []int{0}); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := BurstLengthAblation(Config{}, lengths); err == nil {
		t.Error("zero config accepted")
	}
}

// TestSSOStudy: every DBI scheme must cut the worst-case simultaneous
// switching versus RAW (the SSN benefit the paper's related work credits
// DBI with), and DBI AC — which bounds per-lane switching at 4 — must have
// the lowest worst case.
func TestSSOStudy(t *testing.T) {
	cfg := testConfig()
	cfg.Bursts = 800
	const lanes = 4
	r, err := SSOStudy(cfg, lanes)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Schemes) != 4 {
		t.Fatalf("schemes = %v", r.Schemes)
	}
	idx := map[string]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	raw, ac, dc, opt := idx["RAW"], idx["DBI AC"], idx["DBI DC"], idx["DBI OPT (Fixed)"]
	// AC guarantees at most 4 switching wires per lane per edge — the hard
	// SSO bound among the schemes.
	if r.Max[ac] > 4*lanes {
		t.Errorf("AC worst SSO %d violates the per-lane bound %d", r.Max[ac], 4*lanes)
	}
	if r.Max[ac] >= r.Max[raw] {
		t.Errorf("AC worst SSO %d not below RAW %d", r.Max[ac], r.Max[raw])
	}
	if r.Mean[ac] >= r.Mean[raw] {
		t.Errorf("AC mean SSO %.2f not below RAW %.2f", r.Mean[ac], r.Mean[raw])
	}
	// OPT (balanced weights) also lowers the average coincidence.
	if r.Mean[opt] >= r.Mean[raw] {
		t.Errorf("OPT mean SSO %.2f not below RAW %.2f", r.Mean[opt], r.Mean[raw])
	}
	// DC trades transitions *up* for fewer zeros (the paper's Fig. 2 shows
	// 26/42 vs RAW's 28/27) — its mean switching is not below RAW's. This
	// is the nuance behind Kim et al.: DBI DC's SSN benefit is about
	// driver current on zeros, not transition coincidence.
	if r.Mean[dc] < r.Mean[raw]*0.95 {
		t.Errorf("DC mean SSO %.2f unexpectedly far below RAW %.2f", r.Mean[dc], r.Mean[raw])
	}
	// RAW on uniform data hits close to the full bus width eventually.
	if r.Max[raw] < 3*lanes*2 {
		t.Errorf("RAW worst SSO %d implausibly low", r.Max[raw])
	}
	var sb strings.Builder
	if err := r.Table().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Worst SSO") {
		t.Error("table missing header")
	}
	if _, err := SSOStudy(cfg, 0); err == nil {
		t.Error("zero lanes accepted")
	}
	if _, err := SSOStudy(Config{}, 4); err == nil {
		t.Error("zero config accepted")
	}
}

// TestWindowAblation: joint encoding across burst boundaries can only help,
// and the win is small (the per-burst scheme is near-optimal, which is why
// the paper's design is sensible hardware).
func TestWindowAblation(t *testing.T) {
	cfg := testConfig()
	cfg.Bursts = 2000
	r, err := WindowAblation(cfg, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(r.Energy); i++ {
		if r.Energy[i] > r.Energy[0]+1e-9 {
			t.Errorf("window %d worse than per-burst: %.4f vs %.4f",
				r.Windows[i], r.Energy[i], r.Energy[0])
		}
	}
	imp := r.Improvement()
	if imp < 0 {
		t.Errorf("negative improvement %.4f", imp)
	}
	if imp > 0.05 {
		t.Errorf("window improvement %.2f%% implausibly large", imp*100)
	}
	if _, err := WindowAblation(cfg, []int{0}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := WindowAblation(Config{}, []int{1}); err == nil {
		t.Error("zero config accepted")
	}
}
