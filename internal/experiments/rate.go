package experiments

import (
	"fmt"
	"math"

	"dbiopt/internal/bus"
	"dbiopt/internal/dbi"
	"dbiopt/internal/hw"
	"dbiopt/internal/phy"
	"dbiopt/internal/stats"
)

// RateSweepConfig parameterises the physical-operating-point sweeps of
// Fig. 7 and Fig. 8.
type RateSweepConfig struct {
	Config
	// MinRate/MaxRate/StepRate define the data-rate axis in bit/s.
	MinRate, MaxRate, StepRate float64
	// Cload is the load capacitance in farads (Fig. 7 uses 3 pF).
	Cload float64
	// MakeLink builds the link at a given (cload, rate); defaults to
	// phy.POD135, the GDDR5X interface of the paper.
	MakeLink func(cload, rate float64) phy.Link
}

// DefaultRateSweepConfig mirrors Fig. 7: POD135, 3 pF, 0.5 to 20 Gbps.
func DefaultRateSweepConfig() RateSweepConfig {
	return RateSweepConfig{
		Config:   DefaultConfig(),
		MinRate:  0.5 * phy.Gbps,
		MaxRate:  20 * phy.Gbps,
		StepRate: 0.5 * phy.Gbps,
		Cload:    3 * phy.PicoFarad,
		MakeLink: phy.POD135,
	}
}

// Validate reports an error for unusable sweep parameters.
func (c RateSweepConfig) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	if !(c.MinRate > 0) || !(c.MaxRate >= c.MinRate) || !(c.StepRate > 0) {
		return fmt.Errorf("experiments: bad rate axis [%g, %g] step %g", c.MinRate, c.MaxRate, c.StepRate)
	}
	if c.Cload < 0 {
		return fmt.Errorf("experiments: negative Cload %g", c.Cload)
	}
	return nil
}

func (c RateSweepConfig) link(cload, rate float64) phy.Link {
	if c.MakeLink != nil {
		return c.MakeLink(cload, rate)
	}
	return phy.POD135(cload, rate)
}

// RateResult is one normalised-energy-vs-data-rate curve family (Fig. 7).
type RateResult struct {
	RatesGbps []float64
	// Normalised interface energy per burst, relative to RAW at the same
	// operating point.
	DC, AC, Opt, OptFixed []float64
}

// Fig7 reproduces Fig. 7: interface energy per burst of each scheme,
// normalised to unencoded transmission, across per-pin data rates.
func Fig7(cfg RateSweepConfig) (RateResult, error) {
	if err := cfg.Validate(); err != nil {
		return RateResult{}, err
	}
	bc := collect(cfg.Config)
	var r RateResult
	for rate := cfg.MinRate; rate <= cfg.MaxRate+1e-6; rate += cfg.StepRate {
		link := cfg.link(cfg.Cload, rate)
		raw := meanEnergy(bc.raw, link)
		r.RatesGbps = append(r.RatesGbps, rate/phy.Gbps)
		r.DC = append(r.DC, meanEnergy(bc.dc, link)/raw)
		r.AC = append(r.AC, meanEnergy(bc.ac, link)/raw)
		r.OptFixed = append(r.OptFixed, meanEnergy(bc.fixed, link)/raw)
		r.Opt = append(r.Opt, optMeanEnergy(bc.bursts, link, cfg.costWorkers())/raw)
	}
	return r, nil
}

func meanEnergy(costs []bus.Cost, link phy.Link) float64 {
	var sum float64
	for _, c := range costs {
		sum += link.BurstEnergy(c)
	}
	return sum / float64(len(costs))
}

func optMeanEnergy(bursts []bus.Burst, link phy.Link, workers int) float64 {
	enc := scheme("OPT", link.Weights())
	var sum float64
	// As in optMean: parallel integer costs, serial in-order float sum.
	for _, c := range dbi.ParallelCosts(enc, bursts, workers) {
		sum += link.BurstEnergy(c)
	}
	return sum / float64(len(bursts))
}

// Plot converts the rate sweep to a renderable plot.
func (r RateResult) Plot(title string) *stats.Plot {
	p := &stats.Plot{Title: title, XLabel: "Data Rate [Gbps]", YLabel: "Normalized Energy", X: r.RatesGbps}
	mustAdd(p, "DC", r.DC)
	mustAdd(p, "AC", r.AC)
	mustAdd(p, "OPT", r.Opt)
	mustAdd(p, "OPT (Fixed)", r.OptFixed)
	return p
}

// DCOptFixedCrossover returns the lowest data rate in Gbps at which OPT
// (Fixed) becomes at least as cheap as DBI DC (the paper finds 3.8 Gbps at
// 3 pF).
func (r RateResult) DCOptFixedCrossover() float64 {
	for i := range r.RatesGbps {
		if r.OptFixed[i] <= r.DC[i] {
			return r.RatesGbps[i]
		}
	}
	return math.NaN()
}

// MaxGainRate returns the data rate in Gbps where OPT (Fixed) enjoys its
// largest advantage over the best conventional scheme, and that advantage
// as a fraction (the paper finds ~14 Gbps at 3 pF).
func (r RateResult) MaxGainRate() (rateGbps, saving float64) {
	for i := range r.RatesGbps {
		best := math.Min(r.DC[i], r.AC[i])
		if best <= 0 {
			continue
		}
		s := 1 - r.OptFixed[i]/best
		if s > saving {
			saving = s
			rateGbps = r.RatesGbps[i]
		}
	}
	return rateGbps, saving
}

// Table1Result wraps the synthesis reports with presentation helpers.
type Table1Result struct {
	Reports []hw.Report
}

// Table1 reproduces the paper's Table I with the hw package's estimation
// flow (see DESIGN.md for the substitution notes).
func Table1(beats int, cfg hw.SynthesisConfig) Table1Result {
	return Table1Result{Reports: hw.SynthesizeAll(beats, cfg)}
}

// Table renders the synthesis reports as the paper's table layout.
func (r Table1Result) Table() *stats.Table {
	t := &stats.Table{
		Title: "Table I — synthesis estimates (generic 32nm-style library)",
		Columns: []string{"Scheme", "Area (µm²)", "Static (µW)", "Dynamic (µW)",
			"Burst Rate (GHz)", "Total (µW)", "E/Burst (pJ)", "Meets 1.5 GHz"},
	}
	for _, rep := range r.Reports {
		_ = t.AddRow(rep.Scheme,
			fmt.Sprintf("%.0f", rep.AreaUm2),
			fmt.Sprintf("%.1f", rep.StaticUw),
			fmt.Sprintf("%.1f", rep.DynamicUw),
			fmt.Sprintf("%.2f", rep.BurstRateGHz),
			fmt.Sprintf("%.1f", rep.TotalUw),
			fmt.Sprintf("%.3f", rep.EnergyPerBurstPJ),
			fmt.Sprint(rep.MeetsTarget))
	}
	return t
}

// EncodingEnergy returns the per-burst encoder energy in joules for the
// named Table I scheme, the quantity Fig. 8 folds into the link energy.
func (r Table1Result) EncodingEnergy(scheme string) (float64, error) {
	for _, rep := range r.Reports {
		if rep.Scheme == scheme {
			return rep.EnergyPerBurstPJ * 1e-12, nil
		}
	}
	return 0, fmt.Errorf("experiments: no synthesis report for %q", scheme)
}

// Fig8Result holds, per load capacitance, the total (link + encoder) energy
// of OPT (Fixed) normalised to the best conventional scheme including its
// encoder energy — the format of Fig. 8.
type Fig8Result struct {
	RatesGbps []float64
	CloadsPF  []float64
	// Norm[c][i] is the normalised energy at CloadsPF[c], RatesGbps[i].
	Norm [][]float64
}

// Fig8 reproduces Fig. 8: the fixed-coefficient scheme's energy per burst,
// including the energy spent encoding (from the Table I flow), normalised
// to the better of DBI DC and DBI AC (also charged their encoder energy),
// across data rates and load capacitances.
func Fig8(cfg RateSweepConfig, cloadsPF []float64, synth Table1Result) (Fig8Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig8Result{}, err
	}
	encDC, err := synth.EncodingEnergy("DBI DC")
	if err != nil {
		return Fig8Result{}, err
	}
	encAC, err := synth.EncodingEnergy("DBI AC")
	if err != nil {
		return Fig8Result{}, err
	}
	encOpt, err := synth.EncodingEnergy("DBI OPT (Fixed Coeff.)")
	if err != nil {
		return Fig8Result{}, err
	}

	bc := collect(cfg.Config)
	var out Fig8Result
	out.CloadsPF = append(out.CloadsPF, cloadsPF...)
	for rate := cfg.MinRate; rate <= cfg.MaxRate+1e-6; rate += cfg.StepRate {
		out.RatesGbps = append(out.RatesGbps, rate/phy.Gbps)
	}
	for _, cpf := range cloadsPF {
		row := make([]float64, 0, len(out.RatesGbps))
		for _, rg := range out.RatesGbps {
			link := cfg.link(cpf*phy.PicoFarad, rg*phy.Gbps)
			dc := meanEnergy(bc.dc, link) + encDC
			ac := meanEnergy(bc.ac, link) + encAC
			opt := meanEnergy(bc.fixed, link) + encOpt
			row = append(row, opt/math.Min(dc, ac))
		}
		out.Norm = append(out.Norm, row)
	}
	return out, nil
}

// Plot converts the Fig. 8 family to a renderable plot, one series per load
// capacitance.
func (r Fig8Result) Plot(title string) *stats.Plot {
	p := &stats.Plot{Title: title, XLabel: "Data Rate [Gbps]", YLabel: "Normalized Energy", X: r.RatesGbps}
	for i, c := range r.CloadsPF {
		mustAdd(p, fmt.Sprintf("%g pF", c), r.Norm[i])
	}
	return p
}

// BestSaving returns the largest saving (as a fraction) across the sweep
// for the given load capacitance index.
func (r Fig8Result) BestSaving(cloadIdx int) (rateGbps, saving float64) {
	for i, v := range r.Norm[cloadIdx] {
		if s := 1 - v; s > saving {
			saving = s
			rateGbps = r.RatesGbps[i]
		}
	}
	return rateGbps, saving
}
