package experiments

import (
	"fmt"

	"dbiopt/internal/dbi"
	"dbiopt/internal/phy"
	"dbiopt/internal/stats"
	"dbiopt/internal/trace"
)

// WorkloadResult compares the coding schemes across realistic workload
// classes at one physical operating point — the evaluation the paper's
// uniform-random methodology abstracts away, and the reason the optimal
// scheme's advantage varies in practice.
type WorkloadResult struct {
	Link      phy.Link
	Workloads []string
	Schemes   []string
	// Norm[w][s] is scheme s's interface energy on workload w, normalised
	// to RAW on the same data. NaN-free: workloads that cost RAW nothing
	// (all-ones) report 1 for every scheme.
	Norm [][]float64
}

// WorkloadStudy runs every catalog workload through every scheme using
// streaming (state-carrying) encoding, as a real PHY would.
func WorkloadStudy(cfg Config, link phy.Link) (WorkloadResult, error) {
	if err := cfg.Validate(); err != nil {
		return WorkloadResult{}, err
	}
	if err := link.Validate(); err != nil {
		return WorkloadResult{}, err
	}
	schemes := []dbi.Encoder{
		scheme("DC", dbi.FixedWeights), scheme("AC", dbi.FixedWeights),
		scheme("OPT-FIXED", dbi.FixedWeights), scheme("OPT", link.Weights()),
	}
	var out WorkloadResult
	out.Link = link
	for _, enc := range schemes {
		out.Schemes = append(out.Schemes, enc.Name())
	}
	for _, mk := range trace.Catalog(cfg.Seed) {
		// Regenerate the same byte stream for every scheme: sources are
		// stateful, so each scheme gets a fresh source via the catalog.
		name := mk.Name()
		out.Workloads = append(out.Workloads, name)
		raw := runWorkload(cfg, name, scheme("RAW", dbi.FixedWeights), link)
		row := make([]float64, 0, len(schemes))
		for _, enc := range schemes {
			e := runWorkload(cfg, name, enc, link)
			if raw == 0 {
				row = append(row, 1)
			} else {
				row = append(row, e/raw)
			}
		}
		out.Norm = append(out.Norm, row)
	}
	return out, nil
}

// runWorkload streams cfg.Bursts bursts of the named catalog workload
// through enc and returns the total interface energy.
func runWorkload(cfg Config, name string, enc dbi.Encoder, link phy.Link) float64 {
	var src trace.Source
	for _, s := range trace.Catalog(cfg.Seed) {
		if s.Name() == name {
			src = s
			break
		}
	}
	if src == nil {
		panic(fmt.Sprintf("experiments: workload %q vanished from the catalog", name))
	}
	st := dbi.NewStream(enc)
	for i := 0; i < cfg.Bursts; i++ {
		st.Transmit(src.Next(cfg.Beats))
	}
	return link.BurstEnergy(st.TotalCost())
}

// Table renders the workload study.
func (r WorkloadResult) Table() *stats.Table {
	cols := append([]string{"Workload"}, r.Schemes...)
	t := &stats.Table{
		Title:   fmt.Sprintf("Workload study — energy vs RAW at %s", r.Link),
		Columns: cols,
	}
	for i, w := range r.Workloads {
		row := []string{w}
		for _, v := range r.Norm[i] {
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		_ = t.AddRow(row...)
	}
	return t
}

// OptNeverWorst verifies the study's invariant: at the link's own operating
// point the weight-matched optimal scheme is never meaningfully beaten by
// DC or AC on any workload. A small slack is allowed because streaming
// encoding is per-burst optimal along each scheme's own state trajectory,
// not globally optimal across bursts (see the window ablation), so another
// scheme can theoretically sneak ahead by a fraction of a percent.
func (r WorkloadResult) OptNeverWorst() error {
	optIdx := -1
	for i, s := range r.Schemes {
		if s == "DBI OPT" || s == "DBI OPT (Fixed)" {
			optIdx = i // weight-matched OPT is added last; keep scanning
		}
	}
	if optIdx < 0 {
		return fmt.Errorf("experiments: no OPT scheme in study")
	}
	for w := range r.Workloads {
		for s := range r.Schemes {
			if s == optIdx {
				continue
			}
			if r.Norm[w][optIdx] > r.Norm[w][s]*1.01+1e-9 {
				return fmt.Errorf("experiments: %s beats OPT on %s (%.4f vs %.4f)",
					r.Schemes[s], r.Workloads[w], r.Norm[w][s], r.Norm[w][optIdx])
			}
		}
	}
	return nil
}
