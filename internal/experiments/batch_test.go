package experiments

import (
	"testing"

	"dbiopt/internal/bus"
)

// TestLaneStudy runs the dbibench -lanes study on a small workload: every
// (scheme, beats) pair must produce a row, and the built-in equivalence
// check (serial vs batch totals) must hold — a failure surfaces as an error
// from LaneStudy itself.
func TestLaneStudy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bursts = 64
	res, err := LaneStudy(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lanes != 8 || res.Frames != 8 {
		t.Fatalf("geometry: %d lanes × %d frames", res.Lanes, res.Frames)
	}
	want := len(laneStudyBeats) * len(laneStudySchemes)
	if len(res.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(res.Rows), want)
	}
	for _, row := range res.Rows {
		if row.Cost == (bus.Cost{}) {
			t.Errorf("%s/%d: zero total cost", row.Scheme, row.Beats)
		}
	}
	if res.Table() == nil {
		t.Fatal("nil table")
	}
}

// TestLaneStudyRejectsBadLanes pins the argument validation.
func TestLaneStudyRejectsBadLanes(t *testing.T) {
	if _, err := LaneStudy(DefaultConfig(), 0); err == nil {
		t.Fatal("lanes=0 accepted")
	}
}
