package experiments

import (
	"strings"
	"testing"

	"dbiopt/internal/bus"
)

// testConfig is DefaultConfig shrunk for test runtime; the statistics are
// stable well below 10000 bursts.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Bursts = 3000
	cfg.Steps = 40
	return cfg
}

// TestFig2GoldenValues pins the worked example end to end.
func TestFig2GoldenValues(t *testing.T) {
	r := Fig2()
	if r.DC != (bus.Cost{Zeros: 26, Transitions: 42}) {
		t.Errorf("DC = %+v", r.DC)
	}
	if r.AC != (bus.Cost{Zeros: 43, Transitions: 22}) {
		t.Errorf("AC = %+v", r.AC)
	}
	if r.Opt.Zeros+r.Opt.Transitions != 52 {
		t.Errorf("Opt total = %d", r.Opt.Zeros+r.Opt.Transitions)
	}
	want := []bus.Cost{{Zeros: 26, Transitions: 42}, {Zeros: 27, Transitions: 28}, {Zeros: 28, Transitions: 24}, {Zeros: 29, Transitions: 23}, {Zeros: 43, Transitions: 22}}
	if len(r.Pareto) != len(want) {
		t.Fatalf("pareto = %v", r.Pareto)
	}
	for i := range want {
		if r.Pareto[i] != want[i] {
			t.Errorf("pareto[%d] = %+v, want %+v", i, r.Pareto[i], want[i])
		}
	}
	tbl := r.Table()
	if len(tbl.Rows) != 3+len(want) {
		t.Errorf("table has %d rows", len(tbl.Rows))
	}
}

// TestFig3Claims checks the paper's Fig. 3 statements within tolerance
// bands around the published numbers:
//
//   - OPT is never worse than RAW, DC or AC at any alpha
//   - OPT coincides with DC at alpha=0 and with AC at alpha=1
//   - AC overtakes DC near alpha = 0.56
//   - the maximum OPT advantage over the best conventional scheme is
//     around 6.75 %
//   - RAW is flat at ~4 zeros + ~4 transitions per byte (32 per burst)
func TestFig3Claims(t *testing.T) {
	r, err := Fig3(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Alphas {
		if r.Opt[i] > r.DC[i]+1e-9 || r.Opt[i] > r.AC[i]+1e-9 || r.Opt[i] > r.Raw[i]+1e-9 {
			t.Fatalf("alpha=%.2f: OPT (%.3f) worse than a baseline (dc=%.3f ac=%.3f raw=%.3f)",
				r.Alphas[i], r.Opt[i], r.DC[i], r.AC[i], r.Raw[i])
		}
	}
	last := len(r.Alphas) - 1
	if d := r.Opt[0] - r.DC[0]; d < -1e-9 || d > 1e-9 {
		t.Errorf("alpha=0: OPT %.4f != DC %.4f", r.Opt[0], r.DC[0])
	}
	if d := r.Opt[last] - r.AC[last]; d < -1e-9 || d > 1e-9 {
		t.Errorf("alpha=1: OPT %.4f != AC %.4f", r.Opt[last], r.AC[last])
	}
	if cross := r.Crossover(); cross < 0.45 || cross > 0.65 {
		t.Errorf("AC/DC crossover at alpha=%.3f, paper finds 0.56", cross)
	}
	saving, at := r.MaxAdvantage(r.Opt)
	if saving < 0.055 || saving > 0.08 {
		t.Errorf("max OPT advantage %.2f%%, paper finds 6.75%%", saving*100)
	}
	if at < 0.4 || at > 0.7 {
		t.Errorf("max advantage at alpha=%.2f, expected near the crossover", at)
	}
	for i := range r.Raw {
		if r.Raw[i] < 31 || r.Raw[i] > 33 {
			t.Errorf("RAW at alpha=%.2f is %.2f, expected ~32", r.Alphas[i], r.Raw[i])
		}
	}
}

// TestFig4Claims checks the fixed-coefficient statements: OPT (Fixed) stays
// within a whisker of true OPT in the mid range, beats the best
// conventional scheme from roughly alpha 0.23 to 0.79, and its maximum
// advantage is nearly identical to OPT's (paper: 6.58 % vs 6.75 %).
func TestFig4Claims(t *testing.T) {
	r, err := Fig4(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.OptFixed == nil {
		t.Fatal("Fig4 did not populate OptFixed")
	}
	best := r.BestConventional()
	for i, alpha := range r.Alphas {
		if r.OptFixed[i] < r.Opt[i]-1e-9 {
			t.Fatalf("alpha=%.2f: fixed (%.3f) beats true OPT (%.3f) — impossible", alpha, r.OptFixed[i], r.Opt[i])
		}
		if alpha >= 0.3 && alpha <= 0.7 {
			if r.OptFixed[i] >= best[i] {
				t.Errorf("alpha=%.2f: fixed (%.4f) should beat best conventional (%.4f)", alpha, r.OptFixed[i], best[i])
			}
			// Within 2% of the true optimum in the mid range.
			if r.OptFixed[i] > r.Opt[i]*1.02 {
				t.Errorf("alpha=%.2f: fixed (%.4f) strays >2%% from OPT (%.4f)", alpha, r.OptFixed[i], r.Opt[i])
			}
		}
	}
	savFix, _ := r.MaxAdvantage(r.OptFixed)
	savOpt, _ := r.MaxAdvantage(r.Opt)
	if savFix < 0.05 || savFix > savOpt+1e-9 {
		t.Errorf("fixed max advantage %.2f%%, OPT %.2f%%; paper: 6.58%% vs 6.75%%", savFix*100, savOpt*100)
	}
}

// TestSweepPlot covers the plot conversion.
func TestSweepPlot(t *testing.T) {
	cfg := testConfig()
	cfg.Bursts = 200
	r, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Plot("Fig. 4")
	if len(p.Series) != 5 {
		t.Errorf("plot has %d series", len(p.Series))
	}
	var sb strings.Builder
	if err := p.WriteDat(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "OPT_(Fixed)") {
		t.Error("dat output missing fixed series")
	}
}

// TestConfigValidation covers the config guards.
func TestConfigValidation(t *testing.T) {
	bad := []Config{{}, {Bursts: -1, Beats: 8, Steps: 2}, {Bursts: 1, Beats: 0, Steps: 2}, {Bursts: 1, Beats: 8, Steps: 0}}
	for _, cfg := range bad {
		if _, err := Fig3(cfg); err == nil {
			t.Errorf("Fig3(%+v) accepted", cfg)
		}
	}
	if _, err := Fig4(Config{}); err == nil {
		t.Error("Fig4 accepted zero config")
	}
}

// TestHeadlineClaimsAcrossSeeds: the reproduction's headline numbers — the
// AC/DC crossover near alpha 0.56 and the ~6.6 % maximum OPT advantage —
// must hold for any seed, not just the default one. This guards against the
// reproduction resting on a lucky workload draw.
func TestHeadlineClaimsAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 99, 31337} {
		cfg := testConfig()
		cfg.Bursts = 2000
		cfg.Seed = seed
		r, err := Fig4(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if cross := r.Crossover(); cross < 0.45 || cross > 0.65 {
			t.Errorf("seed %d: crossover at alpha=%.3f outside the paper band", seed, cross)
		}
		if saving, _ := r.MaxAdvantage(r.Opt); saving < 0.05 || saving > 0.085 {
			t.Errorf("seed %d: max OPT advantage %.2f%% outside the paper band", seed, saving*100)
		}
		if saving, _ := r.MaxAdvantage(r.OptFixed); saving < 0.045 {
			t.Errorf("seed %d: fixed advantage %.2f%% too small", seed, saving*100)
		}
	}
}

// TestDeterminism: identical configs give identical curves.
func TestDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.Bursts = 500
	a, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Opt {
		if a.Opt[i] != b.Opt[i] || a.DC[i] != b.DC[i] {
			t.Fatalf("non-deterministic at point %d", i)
		}
	}
}
