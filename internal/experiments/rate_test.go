package experiments

import (
	"strings"
	"testing"

	"dbiopt/internal/hw"
	"dbiopt/internal/phy"
)

func testRateConfig() RateSweepConfig {
	cfg := DefaultRateSweepConfig()
	cfg.Bursts = 2000
	return cfg
}

func testSynth() hw.SynthesisConfig {
	cfg := hw.DefaultSynthesisConfig()
	cfg.ActivityBursts = 400
	return cfg
}

// TestFig7Claims checks the paper's Fig. 7 statements on POD135 with 3 pF:
//
//   - DBI DC beats OPT (Fixed) at low rates, with the crossover near
//     3.8 Gbps
//   - the maximum OPT (Fixed) gain over the best conventional scheme sits
//     near 14 Gbps and is around 5-7 %
//   - at low rates DC saves energy vs RAW (≈0.82) while AC costs more than
//     RAW (>1); at high rates the picture flips
func TestFig7Claims(t *testing.T) {
	r, err := Fig7(testRateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cross := r.DCOptFixedCrossover(); cross < 2.5 || cross > 5.5 {
		t.Errorf("DC/OPT(Fixed) crossover at %.1f Gbps, paper finds 3.8", cross)
	}
	rate, saving := r.MaxGainRate()
	if rate < 10 || rate > 18 {
		t.Errorf("max gain at %.1f Gbps, paper finds ~14", rate)
	}
	if saving < 0.05 || saving > 0.08 {
		t.Errorf("max gain %.2f%%, paper reports ~6%%", saving*100)
	}
	if r.DC[0] > 0.9 {
		t.Errorf("DC at %.1f Gbps = %.3f, expected ≈0.82 (zero-dominated regime)", r.RatesGbps[0], r.DC[0])
	}
	if r.AC[0] < 1.0 {
		t.Errorf("AC at %.1f Gbps = %.3f, expected >1 (DBI AC hurts at low rates)", r.RatesGbps[0], r.AC[0])
	}
	last := len(r.RatesGbps) - 1
	if r.AC[last] > 1.0 {
		t.Errorf("AC at %.1f Gbps = %.3f, expected <1", r.RatesGbps[last], r.AC[last])
	}
	if r.DC[last] < r.AC[last] {
		t.Errorf("at 20 Gbps DC (%.3f) should be worse than AC (%.3f)", r.DC[last], r.AC[last])
	}
	// OPT must never be worse than any scheme, RAW (1.0) included.
	for i := range r.RatesGbps {
		if r.Opt[i] > 1+1e-9 || r.Opt[i] > r.DC[i]+1e-9 || r.Opt[i] > r.AC[i]+1e-9 ||
			r.Opt[i] > r.OptFixed[i]+1e-9 {
			t.Fatalf("at %.1f Gbps OPT (%.4f) worse than a baseline", r.RatesGbps[i], r.Opt[i])
		}
	}
}

// TestFig7Plot covers the rendering path.
func TestFig7Plot(t *testing.T) {
	cfg := testRateConfig()
	cfg.Bursts = 200
	cfg.StepRate = 5 * phy.Gbps
	r, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.Plot("Fig. 7").WriteDat(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Data Rate") {
		t.Error("missing axis label")
	}
}

// TestTable1Rendering covers the table path and the per-scheme energy
// lookup used by Fig. 8.
func TestTable1Rendering(t *testing.T) {
	r := Table1(8, testSynth())
	tbl := r.Table()
	if len(tbl.Rows) != 4 {
		t.Fatalf("table rows = %d", len(tbl.Rows))
	}
	var sb strings.Builder
	if err := tbl.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "DBI OPT (Fixed Coeff.)") {
		t.Error("markdown missing scheme row")
	}
	e, err := r.EncodingEnergy("DBI DC")
	if err != nil || e <= 0 {
		t.Errorf("EncodingEnergy = %g, %v", e, err)
	}
	if _, err := r.EncodingEnergy("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestFig8Claims checks the Fig. 8 statements: once the encoder's own
// energy is charged, OPT (Fixed) loses at very low data rates (normalised
// energy > 1) but still saves ~5-6 % at its best operating point for loads
// of 3 pF and up, and larger loads reach their best saving at lower rates.
func TestFig8Claims(t *testing.T) {
	cfg := testRateConfig()
	synth := Table1(8, testSynth())
	cloads := []float64{1, 3, 8}
	r, err := Fig8(cfg, cloads, synth)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Norm) != len(cloads) || len(r.Norm[0]) != len(r.RatesGbps) {
		t.Fatalf("geometry %dx%d", len(r.Norm), len(r.Norm[0]))
	}
	// At the lowest rate the encoder energy dominates any coding gain.
	for c := range cloads {
		if r.Norm[c][0] <= 1 {
			t.Errorf("cload=%gpF: normalised energy at %.1f Gbps = %.3f, expected >1",
				cloads[c], r.RatesGbps[0], r.Norm[c][0])
		}
	}
	// 3 pF and 8 pF reach a 4-7 % saving somewhere in the sweep.
	for _, c := range []int{1, 2} {
		_, saving := r.BestSaving(c)
		if saving < 0.04 || saving > 0.08 {
			t.Errorf("cload=%gpF: best saving %.2f%%, paper reports 5-6%%", cloads[c], saving*100)
		}
	}
	// Higher load capacitance moves the best operating point to lower
	// rates (the paper's main Fig. 8 observation).
	rate3, _ := r.BestSaving(1)
	rate8, _ := r.BestSaving(2)
	if rate8 >= rate3 {
		t.Errorf("best rate at 8 pF (%.1f) should be below 3 pF (%.1f)", rate8, rate3)
	}
	var sb strings.Builder
	if err := r.Plot("Fig. 8").WriteDat(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "8_pF") {
		t.Error("plot missing cload series")
	}
}

// TestRateSweepValidation covers the guard rails.
func TestRateSweepValidation(t *testing.T) {
	bad := DefaultRateSweepConfig()
	bad.StepRate = 0
	if _, err := Fig7(bad); err == nil {
		t.Error("zero step accepted")
	}
	bad = DefaultRateSweepConfig()
	bad.MaxRate = bad.MinRate / 2
	if _, err := Fig7(bad); err == nil {
		t.Error("inverted axis accepted")
	}
	bad = DefaultRateSweepConfig()
	bad.Cload = -1
	if _, err := Fig7(bad); err == nil {
		t.Error("negative cload accepted")
	}
	bad = DefaultRateSweepConfig()
	bad.Bursts = 0
	if _, err := Fig8(bad, []float64{3}, Table1(8, testSynth())); err == nil {
		t.Error("Fig8 accepted zero bursts")
	}
}

// TestFig8MissingScheme: a synthesis result lacking a scheme is reported.
func TestFig8MissingScheme(t *testing.T) {
	if _, err := Fig8(testRateConfig(), []float64{3}, Table1Result{}); err == nil {
		t.Error("empty synthesis accepted")
	}
}
