package experiments

import (
	"strings"
	"testing"

	"dbiopt/internal/phy"
)

// TestWorkloadStudy exercises the realistic-workload comparison: geometry,
// the OPT dominance invariant, and a couple of physically grounded spot
// checks.
func TestWorkloadStudy(t *testing.T) {
	cfg := testConfig()
	cfg.Bursts = 600
	link := phy.POD135(3*phy.PicoFarad, 12*phy.Gbps)
	r, err := WorkloadStudy(cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) == 0 || len(r.Schemes) != 4 {
		t.Fatalf("geometry: %d workloads x %d schemes", len(r.Workloads), len(r.Schemes))
	}
	for i, row := range r.Norm {
		if len(row) != len(r.Schemes) {
			t.Fatalf("row %d has %d entries", i, len(row))
		}
		for j, v := range row {
			if v < 0 || v != v {
				t.Fatalf("workload %s scheme %s: norm %g", r.Workloads[i], r.Schemes[j], v)
			}
		}
	}
	if err := r.OptNeverWorst(); err != nil {
		t.Error(err)
	}

	idx := map[string]int{}
	for i, w := range r.Workloads {
		idx[w] = i
	}
	// All-zeros data: DC-style inversion nearly halves the zeros (8 zeros
	// become 0 zeros + 1 DBI zero), so DC must save a lot.
	if z, ok := idx["constant-00"]; ok {
		if r.Norm[z][0] > 0.7 { // schemes[0] is DBI DC
			t.Errorf("DC on all-zeros = %.3f, expected large saving", r.Norm[z][0])
		}
	} else {
		t.Error("constant-00 workload missing from catalog")
	}
	// All-ones data costs RAW nothing; the study reports 1 for everyone.
	if o, ok := idx["constant-ff"]; ok {
		for j := range r.Schemes {
			if r.Norm[o][j] != 1 {
				t.Errorf("all-ones row should be 1, got %.3f for %s", r.Norm[o][j], r.Schemes[j])
			}
		}
	} else {
		t.Error("constant-ff workload missing from catalog")
	}

	var sb strings.Builder
	if err := r.Table().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "uniform") {
		t.Error("table missing workloads")
	}
}

// TestWorkloadStudyValidation covers the guards.
func TestWorkloadStudyValidation(t *testing.T) {
	link := phy.POD135(3*phy.PicoFarad, 12*phy.Gbps)
	if _, err := WorkloadStudy(Config{}, link); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := WorkloadStudy(testConfig(), phy.Link{}); err == nil {
		t.Error("invalid link accepted")
	}
}
