package analysis

import "testing"

// TestHygieneFixture seeds every directive and doc violation the hygiene
// analyzer knows — unknown verb, detached hotpath, reasonless waiver,
// waiver outside a hot path, hotpath in a test file, undocumented export —
// and asserts each surfaces once at its exact position.
func TestHygieneFixture(t *testing.T) {
	tree := fixtureTree(t, "hygienemod")
	hot, diags := Directives(tree)
	docDiags, err := Docs(tree, ".")
	if err != nil {
		t.Fatal(err)
	}
	diags = append(diags, docDiags...)
	sortDiagnostics(diags)

	if len(hot) != 1 || hot[0].Name != "Hot" {
		t.Fatalf("hotpath funcs = %v, want just Hot", hot)
	}
	checkDiags(t, diags, []wantDiag{
		{"hyg.go", 7, "hygiene", "unknown directive //dbi:frobnicate"},
		{"hyg.go", 10, "hygiene", "//dbi:hotpath must be part of a function declaration's doc comment"},
		{"hyg.go", 20, "hygiene", "//dbi:allow-escape requires a reason"},
		{"hyg.go", 26, "hygiene", "//dbi:allow-escape outside a //dbi:hotpath function body has no effect"},
		{"hyg.go", 29, "hygiene", "exported function Undocumented has no doc comment"},
		{"hyg_test.go", 8, "hygiene", "//dbi:hotpath on TestHotInTestFile is in a _test.go file"},
	})
}
