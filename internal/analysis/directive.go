package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// The //dbi: directive grammar (DESIGN.md §10). Directives are ordinary
// comments starting exactly with "//dbi:" — no space, mirroring //go: —
// followed by a verb and an optional argument:
//
//	//dbi:hotpath
//	    On the doc comment of a function declaration. Marks the function
//	    body as a zero-allocation hot path: the escape gate fails on any
//	    compiler-reported heap escape inside it. Not allowed in _test.go
//	    files (test sources are never compiled by `go build`, so the gate
//	    could not see them).
//
//	//dbi:allow-escape <reason>
//	    On (or on the line directly above) a line inside a //dbi:hotpath
//	    function body. Waives escape diagnostics for that one line. The
//	    reason is mandatory: every waiver documents why the allocation is
//	    cold-path (scratch growth, panic formatting, ...).
//
// Anything else after //dbi: is an unknown directive and a hygiene error.
const (
	directivePrefix = "//dbi:"
	verbHotpath     = "hotpath"
	verbAllowEscape = "allow-escape"
)

// HotFunc is one //dbi:hotpath-annotated function: the file it lives in
// and the line range of its declaration, against which escape diagnostics
// are matched.
type HotFunc struct {
	File      string // root-relative path
	Name      string // receiver-qualified, e.g. "(*Stream).Transmit"
	StartLine int    // first line of the declaration
	EndLine   int    // last line of the body
	// waived maps waived line numbers inside the body to the waiver's
	// reason.
	waived map[int]string
}

// Waived reports whether escape diagnostics on the given line are waived
// by a //dbi:allow-escape directive.
func (h *HotFunc) Waived(line int) bool {
	_, ok := h.waived[line]
	return ok
}

// Directives scans the tree for //dbi: comments: it returns every hotpath
// function (with its waived lines resolved) and the hygiene diagnostics
// for unknown verbs, misplaced directives and missing waiver reasons.
func Directives(t *Tree) ([]*HotFunc, []Diagnostic) {
	var hot []*HotFunc
	var diags []Diagnostic
	for _, d := range t.Dirs {
		for _, f := range d.Files {
			h, ds := scanFile(t, f)
			hot = append(hot, h...)
			diags = append(diags, ds...)
		}
	}
	sortDiagnostics(diags)
	return hot, diags
}

// scanFile resolves the directives of one file.
func scanFile(t *Tree, f *File) ([]*HotFunc, []Diagnostic) {
	var hot []*HotFunc
	var diags []Diagnostic

	// Pass 1: hotpath directives attach to the function declaration whose
	// doc comment carries them.
	hotComments := make(map[*ast.Comment]bool)
	for _, decl := range f.Ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if ok && fd.Doc != nil {
			for _, c := range fd.Doc.List {
				if verb, _, ok := parseDirective(c.Text); ok && verb == verbHotpath {
					hotComments[c] = true
					if f.Test {
						diags = append(diags, Diagnostic{
							File: f.Rel, Line: t.Fset.Position(c.Pos()).Line, Analyzer: "hygiene",
							Message: fmt.Sprintf("//dbi:hotpath on %s is in a _test.go file, which `go build` never compiles: the escape gate cannot enforce it", funcName(fd)),
						})
						continue
					}
					hot = append(hot, &HotFunc{
						File:      f.Rel,
						Name:      funcName(fd),
						StartLine: t.Fset.Position(fd.Pos()).Line,
						EndLine:   t.Fset.Position(fd.End()).Line,
						waived:    make(map[int]string),
					})
				}
			}
		}
	}

	// Pass 2: every remaining directive comment is either a waiver (which
	// must name a reason and sit inside a hotpath body) or an error.
	for _, cg := range f.Ast.Comments {
		for _, c := range cg.List {
			verb, arg, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			pos := t.Fset.Position(c.Pos())
			switch verb {
			case verbHotpath:
				if !hotComments[c] {
					diags = append(diags, Diagnostic{
						File: f.Rel, Line: pos.Line, Analyzer: "hygiene",
						Message: "//dbi:hotpath must be part of a function declaration's doc comment",
					})
				}
			case verbAllowEscape:
				if arg == "" {
					diags = append(diags, Diagnostic{
						File: f.Rel, Line: pos.Line, Analyzer: "hygiene",
						Message: "//dbi:allow-escape requires a reason, e.g. //dbi:allow-escape scratch growth only",
					})
				}
				line := pos.Line
				if soloComment(f, pos.Offset) {
					// A stand-alone waiver waives the line below it; a
					// trailing one waives its own line.
					line++
				}
				h := coveringHotFunc(hot, line)
				if h == nil {
					diags = append(diags, Diagnostic{
						File: f.Rel, Line: pos.Line, Analyzer: "hygiene",
						Message: "//dbi:allow-escape outside a //dbi:hotpath function body has no effect",
					})
					continue
				}
				h.waived[line] = arg
			default:
				diags = append(diags, Diagnostic{
					File: f.Rel, Line: pos.Line, Analyzer: "hygiene",
					Message: fmt.Sprintf("unknown directive //dbi:%s (known: //dbi:%s, //dbi:%s)", verb, verbHotpath, verbAllowEscape),
				})
			}
		}
	}
	return hot, diags
}

// parseDirective splits a comment into its //dbi: verb and argument; ok is
// false for non-directive comments.
func parseDirective(text string) (verb, arg string, ok bool) {
	rest, found := strings.CutPrefix(text, directivePrefix)
	if !found {
		return "", "", false
	}
	verb, arg, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(verb), strings.TrimSpace(arg), true
}

// soloComment reports whether only whitespace precedes the byte at offset
// on its line — i.e. the comment stands alone rather than trailing code.
func soloComment(f *File, offset int) bool {
	for i := offset - 1; i >= 0; i-- {
		switch f.Src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true
}

// coveringHotFunc returns the hotpath function whose declaration covers the
// line, or nil.
func coveringHotFunc(hot []*HotFunc, line int) *HotFunc {
	for _, h := range hot {
		if line >= h.StartLine && line <= h.EndLine {
			return h
		}
	}
	return nil
}

// funcName renders a receiver-qualified function name, e.g.
// "(*Stream).Transmit" or "EncodeWire".
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return fmt.Sprintf("(%s).%s", typeText(fd.Recv.List[0].Type), fd.Name.Name)
}

// typeText renders the small subset of type expressions receivers use.
func typeText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + typeText(e.X)
	case *ast.IndexExpr:
		return typeText(e.X) + "[" + typeText(e.Index) + "]"
	case *ast.SelectorExpr:
		return typeText(e.X) + "." + e.Sel.Name
	default:
		return fmt.Sprintf("%T", e)
	}
}
