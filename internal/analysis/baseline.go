package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// BaselineConfig parameterizes the baseline-drift analyzer: which JSON
// baseline, which workflow defines the bench gate, and which package
// declares the gate benchmarks.
type BaselineConfig struct {
	// BaselineFile is the root-relative path of the bench baseline JSON.
	BaselineFile string
	// WorkflowFile is the root-relative path of the CI workflow whose
	// `-bench '<regex>'` selections define the gated set.
	WorkflowFile string
	// BenchDir is the root-relative directory of the package declaring the
	// gate benchmarks ("." for the module root).
	BenchDir string
	// LoadDir is the root-relative directory of the load-generator command
	// whose `presets` map declares the dbiload scenarios; the baseline's
	// latency entries and the workflow's `-preset` runs are cross-checked
	// against it. Empty disables the latency checks.
	LoadDir string
}

// DefaultBaseline is the repo's bench-gate wiring.
var DefaultBaseline = BaselineConfig{
	BaselineFile: "bench_baseline.json",
	WorkflowFile: ".github/workflows/ci.yml",
	BenchDir:     ".",
	LoadDir:      "cmd/dbiload",
}

// baselineDoc mirrors cmd/dbibenchdiff's baseline schema; only the
// benchmark and scenario names matter here.
type baselineDoc struct {
	Benchmarks map[string]json.RawMessage `json:"benchmarks"`
	Latency    map[string]json.RawMessage `json:"latency"`
}

// benchSelect matches the workflow's benchmark selections, single-quoted as
// the bench-gate job writes them: -bench '^(BenchmarkFoo|BenchmarkBar)$'.
var benchSelect = regexp.MustCompile(`-bench '([^']+)'`)

// Baseline cross-checks three views of the gated benchmark set — the
// committed bench_baseline.json, the Benchmark functions the bench package
// declares, and the -bench regexes the CI workflow runs — and reports every
// disagreement: a stale baseline entry, a gate regex naming a benchmark
// that no longer exists, a gated benchmark with no baseline, a baseline
// entry no gate runs. Each of these is invisible to `go test` (an unmatched
// -bench regex silently selects nothing) and only surfaces as a confusing
// bench-gate miss; here they fail lint with a position instead.
func Baseline(t *Tree, cfg BaselineConfig) ([]Diagnostic, error) {
	raw, err := os.ReadFile(filepath.Join(t.Root, filepath.FromSlash(cfg.BaselineFile)))
	if err != nil {
		return nil, err
	}
	var doc baselineDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", cfg.BaselineFile, err)
	}

	declared, err := declaredBenchmarks(t, cfg.BenchDir)
	if err != nil {
		return nil, err
	}

	wf, err := os.ReadFile(filepath.Join(t.Root, filepath.FromSlash(cfg.WorkflowFile)))
	if err != nil {
		return nil, err
	}
	gates := gateSelections(string(wf))
	if len(gates) == 0 {
		return nil, fmt.Errorf("analysis: no -bench '<regex>' selections found in %s", cfg.WorkflowFile)
	}

	var diags []Diagnostic

	// Gate regexes vs declared functions: every explicit ^(A|B)$
	// alternation member must still be a declared Benchmark func, and every
	// gate regex must select at least one.
	gatedDeclared := make(map[string]bool)
	for _, g := range gates {
		re, err := regexp.Compile(g.expr)
		if err != nil {
			diags = append(diags, Diagnostic{
				File: cfg.WorkflowFile, Line: g.line, Analyzer: "baseline",
				Message: fmt.Sprintf("bench selection %q does not compile: %v", g.expr, err),
			})
			continue
		}
		matched := false
		for name := range declared {
			if re.MatchString(name) {
				matched = true
				gatedDeclared[name] = true
			}
		}
		if !matched {
			diags = append(diags, Diagnostic{
				File: cfg.WorkflowFile, Line: g.line, Analyzer: "baseline",
				Message: fmt.Sprintf("bench selection %q matches no Benchmark function in %s: the gate would silently run nothing", g.expr, cfg.BenchDir),
			})
		}
		for _, name := range alternationNames(g.expr) {
			if !declared[name] {
				diags = append(diags, Diagnostic{
					File: cfg.WorkflowFile, Line: g.line, Analyzer: "baseline",
					Message: fmt.Sprintf("bench selection names %s, which is not declared in %s: remove it from the gate or restore the benchmark", name, cfg.BenchDir),
				})
			}
		}
	}

	// Baseline entries vs declared functions and gates. Sub-benchmark and
	// GOMAXPROCS suffixes reduce to the declaring function's name.
	baselineRoots := make(map[string]bool)
	for name := range doc.Benchmarks {
		root := benchRoot(name)
		baselineRoots[root] = true
		line := jsonKeyLine(raw, name)
		if !declared[root] {
			diags = append(diags, Diagnostic{
				File: cfg.BaselineFile, Line: line, Analyzer: "baseline",
				Message: fmt.Sprintf("baseline entry %q has no declared Benchmark function %s in %s: stale entry, delete or regenerate", name, root, cfg.BenchDir),
			})
			continue
		}
		if !gatedDeclared[root] {
			diags = append(diags, Diagnostic{
				File: cfg.BaselineFile, Line: line, Analyzer: "baseline",
				Message: fmt.Sprintf("baseline entry %q is not selected by any -bench regex in %s: it can drift without the gate noticing", name, cfg.WorkflowFile),
			})
		}
	}

	// Gated functions vs baseline: a benchmark the gate runs but the
	// baseline does not know fails dbibenchdiff at bench time; fail here
	// with a position instead.
	for name := range gatedDeclared {
		if !baselineRoots[name] {
			diags = append(diags, Diagnostic{
				File: cfg.BaselineFile, Line: 1, Analyzer: "baseline",
				Message: fmt.Sprintf("gated benchmark %s has no entry in %s: regenerate the baseline (see its note field)", name, cfg.BaselineFile),
			})
		}
	}

	if cfg.LoadDir != "" {
		ld, err := latencyDrift(t, cfg, raw, doc, string(wf))
		if err != nil {
			return nil, err
		}
		diags = append(diags, ld...)
	}

	sortDiagnostics(diags)
	return diags, nil
}

// presetRun matches the workflow's dbiload scenario selections: -preset
// <name>, as the load-smoke job writes them.
var presetRun = regexp.MustCompile(`-preset ([A-Za-z0-9._-]+)`)

// latencyDrift is the serving-tier counterpart of the bench cross-check:
// the baseline's latency entries, the presets the load-generator command
// declares, and the -preset runs the CI workflow performs must agree. A
// stale latency entry, a workflow run naming a ghost preset, a latency
// entry no workflow run exercises, and a workflow-run preset with no
// latency entry each fail lint with a position — all four otherwise
// surface only as a confusing load-smoke miss (dbiload rejects an unknown
// preset at run time; dbibenchdiff -load fails on an unadopted scenario).
func latencyDrift(t *Tree, cfg BaselineConfig, raw []byte, doc baselineDoc, wf string) ([]Diagnostic, error) {
	presets, err := declaredPresets(t, cfg.LoadDir)
	if err != nil {
		return nil, err
	}

	var diags []Diagnostic
	gated := make(map[string]bool)
	for _, r := range workflowPresets(wf) {
		if !presets[r.expr] {
			diags = append(diags, Diagnostic{
				File: cfg.WorkflowFile, Line: r.line, Analyzer: "baseline",
				Message: fmt.Sprintf("load run names preset %q, which %s does not declare: the job would fail at dbiload startup", r.expr, cfg.LoadDir),
			})
			continue
		}
		gated[r.expr] = true
	}

	for name := range doc.Latency {
		line := jsonKeyLine(raw, name)
		if !presets[name] {
			diags = append(diags, Diagnostic{
				File: cfg.BaselineFile, Line: line, Analyzer: "baseline",
				Message: fmt.Sprintf("latency entry %q has no declared preset in %s: stale entry, delete or regenerate", name, cfg.LoadDir),
			})
			continue
		}
		if !gated[name] {
			diags = append(diags, Diagnostic{
				File: cfg.BaselineFile, Line: line, Analyzer: "baseline",
				Message: fmt.Sprintf("latency entry %q is not exercised by any -preset run in %s: it can drift without the gate noticing", name, cfg.WorkflowFile),
			})
		}
	}

	for name := range gated {
		if _, ok := doc.Latency[name]; !ok {
			diags = append(diags, Diagnostic{
				File: cfg.BaselineFile, Line: 1, Analyzer: "baseline",
				Message: fmt.Sprintf("workflow-run preset %q has no latency entry in %s: adopt it with dbibenchdiff -load <report> -update", name, cfg.BaselineFile),
			})
		}
	}
	return diags, nil
}

// declaredPresets collects the string keys of the load-generator command's
// `presets` map literal.
func declaredPresets(t *Tree, rel string) (map[string]bool, error) {
	d := t.dir(rel)
	if d == nil {
		return nil, fmt.Errorf("analysis: load command dir %q not in the analyzed tree", rel)
	}
	found := false
	names := make(map[string]bool)
	for _, f := range d.Files {
		if f.Test {
			continue
		}
		for _, dd := range f.Ast.Decls {
			gd, ok := dd.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != "presets" || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					found = true
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if lit, ok := kv.Key.(*ast.BasicLit); ok && lit.Kind == token.STRING {
							if name, err := strconv.Unquote(lit.Value); err == nil {
								names[name] = true
							}
						}
					}
				}
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("analysis: no `presets` map literal found in %s", rel)
	}
	return names, nil
}

// workflowPresets extracts every -preset <name> of the workflow, with line
// numbers.
func workflowPresets(wf string) []gateSel {
	var sels []gateSel
	for i, line := range strings.Split(wf, "\n") {
		for _, m := range presetRun.FindAllStringSubmatch(line, -1) {
			sels = append(sels, gateSel{expr: m[1], line: i + 1})
		}
	}
	return sels
}

// declaredBenchmarks collects the Benchmark* function names of the bench
// package's test files.
func declaredBenchmarks(t *Tree, rel string) (map[string]bool, error) {
	d := t.dir(rel)
	if d == nil {
		return nil, fmt.Errorf("analysis: bench package dir %q not in the analyzed tree", rel)
	}
	decl := make(map[string]bool)
	for _, f := range d.Files {
		if !f.Test {
			continue
		}
		for _, dd := range f.Ast.Decls {
			fd, ok := dd.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Benchmark") {
				continue
			}
			decl[fd.Name.Name] = true
		}
	}
	return decl, nil
}

// gateSel is one -bench selection in the workflow: the regex and the line
// it appears on.
type gateSel struct {
	expr string
	line int
}

// gateSelections extracts every -bench '<regex>' of the workflow, with
// line numbers.
func gateSelections(wf string) []gateSel {
	var sels []gateSel
	for i, line := range strings.Split(wf, "\n") {
		for _, m := range benchSelect.FindAllStringSubmatch(line, -1) {
			sels = append(sels, gateSel{expr: m[1], line: i + 1})
		}
	}
	return sels
}

// alternationNames returns the member names of an explicit ^(A|B|C)$ (or
// ^A$) selection; other regex shapes yield nothing and are checked only by
// matching.
var alternation = regexp.MustCompile(`^\^\(?([A-Za-z0-9_|]+)\)?\$$`)

func alternationNames(expr string) []string {
	m := alternation.FindStringSubmatch(expr)
	if m == nil {
		return nil
	}
	return strings.Split(m[1], "|")
}

// benchRoot reduces a benchmark result name to its declaring function:
// sub-benchmark path segments and the -GOMAXPROCS suffix are stripped.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func benchRoot(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// jsonKeyLine locates the line of a key's first occurrence in the raw JSON,
// good enough for positioned diagnostics on a generated file.
func jsonKeyLine(raw []byte, key string) int {
	idx := bytes.Index(raw, []byte(`"`+key+`"`))
	if idx < 0 {
		return 1
	}
	return 1 + bytes.Count(raw[:idx], []byte{'\n'})
}
