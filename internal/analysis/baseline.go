package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// BaselineConfig parameterizes the baseline-drift analyzer: which JSON
// baseline, which workflow defines the bench gate, and which package
// declares the gate benchmarks.
type BaselineConfig struct {
	// BaselineFile is the root-relative path of the bench baseline JSON.
	BaselineFile string
	// WorkflowFile is the root-relative path of the CI workflow whose
	// `-bench '<regex>'` selections define the gated set.
	WorkflowFile string
	// BenchDir is the root-relative directory of the package declaring the
	// gate benchmarks ("." for the module root).
	BenchDir string
}

// DefaultBaseline is the repo's bench-gate wiring.
var DefaultBaseline = BaselineConfig{
	BaselineFile: "bench_baseline.json",
	WorkflowFile: ".github/workflows/ci.yml",
	BenchDir:     ".",
}

// baselineDoc mirrors cmd/dbibenchdiff's baseline schema; only the
// benchmark names matter here.
type baselineDoc struct {
	Benchmarks map[string]json.RawMessage `json:"benchmarks"`
}

// benchSelect matches the workflow's benchmark selections, single-quoted as
// the bench-gate job writes them: -bench '^(BenchmarkFoo|BenchmarkBar)$'.
var benchSelect = regexp.MustCompile(`-bench '([^']+)'`)

// Baseline cross-checks three views of the gated benchmark set — the
// committed bench_baseline.json, the Benchmark functions the bench package
// declares, and the -bench regexes the CI workflow runs — and reports every
// disagreement: a stale baseline entry, a gate regex naming a benchmark
// that no longer exists, a gated benchmark with no baseline, a baseline
// entry no gate runs. Each of these is invisible to `go test` (an unmatched
// -bench regex silently selects nothing) and only surfaces as a confusing
// bench-gate miss; here they fail lint with a position instead.
func Baseline(t *Tree, cfg BaselineConfig) ([]Diagnostic, error) {
	raw, err := os.ReadFile(filepath.Join(t.Root, filepath.FromSlash(cfg.BaselineFile)))
	if err != nil {
		return nil, err
	}
	var doc baselineDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", cfg.BaselineFile, err)
	}

	declared, err := declaredBenchmarks(t, cfg.BenchDir)
	if err != nil {
		return nil, err
	}

	wf, err := os.ReadFile(filepath.Join(t.Root, filepath.FromSlash(cfg.WorkflowFile)))
	if err != nil {
		return nil, err
	}
	gates := gateSelections(string(wf))
	if len(gates) == 0 {
		return nil, fmt.Errorf("analysis: no -bench '<regex>' selections found in %s", cfg.WorkflowFile)
	}

	var diags []Diagnostic

	// Gate regexes vs declared functions: every explicit ^(A|B)$
	// alternation member must still be a declared Benchmark func, and every
	// gate regex must select at least one.
	gatedDeclared := make(map[string]bool)
	for _, g := range gates {
		re, err := regexp.Compile(g.expr)
		if err != nil {
			diags = append(diags, Diagnostic{
				File: cfg.WorkflowFile, Line: g.line, Analyzer: "baseline",
				Message: fmt.Sprintf("bench selection %q does not compile: %v", g.expr, err),
			})
			continue
		}
		matched := false
		for name := range declared {
			if re.MatchString(name) {
				matched = true
				gatedDeclared[name] = true
			}
		}
		if !matched {
			diags = append(diags, Diagnostic{
				File: cfg.WorkflowFile, Line: g.line, Analyzer: "baseline",
				Message: fmt.Sprintf("bench selection %q matches no Benchmark function in %s: the gate would silently run nothing", g.expr, cfg.BenchDir),
			})
		}
		for _, name := range alternationNames(g.expr) {
			if !declared[name] {
				diags = append(diags, Diagnostic{
					File: cfg.WorkflowFile, Line: g.line, Analyzer: "baseline",
					Message: fmt.Sprintf("bench selection names %s, which is not declared in %s: remove it from the gate or restore the benchmark", name, cfg.BenchDir),
				})
			}
		}
	}

	// Baseline entries vs declared functions and gates. Sub-benchmark and
	// GOMAXPROCS suffixes reduce to the declaring function's name.
	baselineRoots := make(map[string]bool)
	for name := range doc.Benchmarks {
		root := benchRoot(name)
		baselineRoots[root] = true
		line := jsonKeyLine(raw, name)
		if !declared[root] {
			diags = append(diags, Diagnostic{
				File: cfg.BaselineFile, Line: line, Analyzer: "baseline",
				Message: fmt.Sprintf("baseline entry %q has no declared Benchmark function %s in %s: stale entry, delete or regenerate", name, root, cfg.BenchDir),
			})
			continue
		}
		if !gatedDeclared[root] {
			diags = append(diags, Diagnostic{
				File: cfg.BaselineFile, Line: line, Analyzer: "baseline",
				Message: fmt.Sprintf("baseline entry %q is not selected by any -bench regex in %s: it can drift without the gate noticing", name, cfg.WorkflowFile),
			})
		}
	}

	// Gated functions vs baseline: a benchmark the gate runs but the
	// baseline does not know fails dbibenchdiff at bench time; fail here
	// with a position instead.
	for name := range gatedDeclared {
		if !baselineRoots[name] {
			diags = append(diags, Diagnostic{
				File: cfg.BaselineFile, Line: 1, Analyzer: "baseline",
				Message: fmt.Sprintf("gated benchmark %s has no entry in %s: regenerate the baseline (see its note field)", name, cfg.BaselineFile),
			})
		}
	}

	sortDiagnostics(diags)
	return diags, nil
}

// declaredBenchmarks collects the Benchmark* function names of the bench
// package's test files.
func declaredBenchmarks(t *Tree, rel string) (map[string]bool, error) {
	d := t.dir(rel)
	if d == nil {
		return nil, fmt.Errorf("analysis: bench package dir %q not in the analyzed tree", rel)
	}
	decl := make(map[string]bool)
	for _, f := range d.Files {
		if !f.Test {
			continue
		}
		for _, dd := range f.Ast.Decls {
			fd, ok := dd.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Benchmark") {
				continue
			}
			decl[fd.Name.Name] = true
		}
	}
	return decl, nil
}

// gateSel is one -bench selection in the workflow: the regex and the line
// it appears on.
type gateSel struct {
	expr string
	line int
}

// gateSelections extracts every -bench '<regex>' of the workflow, with
// line numbers.
func gateSelections(wf string) []gateSel {
	var sels []gateSel
	for i, line := range strings.Split(wf, "\n") {
		for _, m := range benchSelect.FindAllStringSubmatch(line, -1) {
			sels = append(sels, gateSel{expr: m[1], line: i + 1})
		}
	}
	return sels
}

// alternationNames returns the member names of an explicit ^(A|B|C)$ (or
// ^A$) selection; other regex shapes yield nothing and are checked only by
// matching.
var alternation = regexp.MustCompile(`^\^\(?([A-Za-z0-9_|]+)\)?\$$`)

func alternationNames(expr string) []string {
	m := alternation.FindStringSubmatch(expr)
	if m == nil {
		return nil
	}
	return strings.Split(m[1], "|")
}

// benchRoot reduces a benchmark result name to its declaring function:
// sub-benchmark path segments and the -GOMAXPROCS suffix are stripped.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func benchRoot(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// jsonKeyLine locates the line of a key's first occurrence in the raw JSON,
// good enough for positioned diagnostics on a generated file.
func jsonKeyLine(raw []byte, key string) int {
	idx := bytes.Index(raw, []byte(`"`+key+`"`))
	if idx < 0 {
		return 1
	}
	return 1 + bytes.Count(raw[:idx], []byte{'\n'})
}
