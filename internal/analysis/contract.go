package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// ContractConfig parameterizes the scheme-contract analyzer. The zero
// fields have no defaults: cmd/dbivet wires the repo's actual policy (see
// DefaultContract) and the tests wire their fixtures.
type ContractConfig struct {
	// PackagePath is the import path of the scheme package, e.g.
	// "dbiopt/internal/dbi".
	PackagePath string
	// Encoder and MaskEncoder are the names, within the package, of the
	// scheme interface and its bit-parallel fast-path interface.
	Encoder     string
	MaskEncoder string
	// RegisterFunc is the package-level function whose call sites register
	// schemes ("Register"); a scheme type is "registered" when some
	// Register call's factory argument constructs it.
	RegisterFunc string
	// GoldenFile and FuzzFile are the file names (within the package
	// directory) of the golden tests and the mask-equivalence fuzz target;
	// every scheme must be pinned by both.
	GoldenFile string
	FuzzFile   string
	// FuzzFunc is the fuzz target; when its body iterates the registry
	// (calls RegistryIter), every registered scheme counts as fuzz-covered.
	FuzzFunc     string
	RegistryIter string
	// KernelFuzzFile and KernelFuzzFunc name the kernel-equivalence fuzz
	// target — the compiled-kernel analog of FuzzFunc. Every scheme must be
	// pinned kernel-vs-EncodeInto, either by direct reference in the file or
	// through a registry sweep in the target's body. Empty KernelFuzzFunc
	// disables the clause (fixtures predating the kernel surface).
	KernelFuzzFile string
	KernelFuzzFunc string
	// Allow lists scheme type names exempt from the whole contract —
	// stateful wrappers like Noisy that deliberately have no mask fast
	// path and no registry entry.
	Allow []string
}

// DefaultContract is the repo's scheme contract: every Encoder in
// internal/dbi implements MaskEncoder, registers itself, is pinned by
// golden_test.go and FuzzMaskEquivalence, and has its compiled Kernel pinned
// against the EncodeInto oracle by FuzzKernelEquivalence; *Noisy (stateful
// analog-noise wrapper) is the one allowed exception.
var DefaultContract = ContractConfig{
	PackagePath:    "dbiopt/internal/dbi",
	Encoder:        "Encoder",
	MaskEncoder:    "MaskEncoder",
	RegisterFunc:   "Register",
	GoldenFile:     "golden_test.go",
	FuzzFile:       "fuzz_test.go",
	FuzzFunc:       "FuzzMaskEquivalence",
	RegistryIter:   "Names",
	KernelFuzzFile: "kernel_test.go",
	KernelFuzzFunc: "FuzzKernelEquivalence",
	Allow:          []string{"Noisy"},
}

// Contract type-checks the scheme package and enforces the scheme
// contract on every Encoder implementation found in it.
func Contract(t *Tree, cfg ContractConfig) ([]Diagnostic, error) {
	l, err := newLoader(t)
	if err != nil {
		return nil, err
	}
	pkg, err := l.ImportFrom(cfg.PackagePath, t.Root, 0)
	if err != nil {
		return nil, err
	}
	rel := "."
	if cfg.PackagePath != l.module {
		rel = strings.TrimPrefix(cfg.PackagePath, l.module+"/")
	}
	d := t.dir(rel)
	if d == nil {
		return nil, fmt.Errorf("analysis: package %s (dir %s) not in the analyzed tree", cfg.PackagePath, rel)
	}

	scope := pkg.Scope()
	encoder, err := lookupInterface(scope, cfg.Encoder, cfg.PackagePath)
	if err != nil {
		return nil, err
	}
	maskEncoder, err := lookupInterface(scope, cfg.MaskEncoder, cfg.PackagePath)
	if err != nil {
		return nil, err
	}

	allowed := make(map[string]bool, len(cfg.Allow))
	for _, a := range cfg.Allow {
		allowed[a] = true
	}

	// The scheme set: every non-interface named type whose value or
	// pointer method set satisfies the Encoder interface.
	var schemes []*types.TypeName
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || obj.IsAlias() || types.IsInterface(obj.Type()) {
			continue
		}
		if implements(obj.Type(), encoder) {
			schemes = append(schemes, obj)
		}
	}

	// Constructor map: package-level functions whose results include a
	// scheme type, so NewGreedy credits Greedy and OptFixed credits Opt
	// wherever they are called.
	ctorsOf := make(map[*types.TypeName][]string)
	for _, name := range scope.Names() {
		fn, ok := scope.Lookup(name).(*types.Func)
		if !ok {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			continue
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if tn := namedTypeName(sig.Results().At(i).Type()); tn != nil {
				ctorsOf[tn] = append(ctorsOf[tn], name)
			}
		}
	}

	registered := registeredSchemes(t, d, l, cfg, schemes)
	goldenRefs := fileTypeRefs(d, cfg.GoldenFile, schemes, ctorsOf)
	fuzzRefs := fileTypeRefs(d, cfg.FuzzFile, schemes, ctorsOf)
	fuzzIterates := fuzzIteratesRegistry(d, cfg.FuzzFile, cfg.FuzzFunc, cfg.RegistryIter)
	var kernelRefs map[*types.TypeName]bool
	kernelIterates := false
	if cfg.KernelFuzzFunc != "" {
		kernelRefs = fileTypeRefs(d, cfg.KernelFuzzFile, schemes, ctorsOf)
		kernelIterates = fuzzIteratesRegistry(d, cfg.KernelFuzzFile, cfg.KernelFuzzFunc, cfg.RegistryIter)
	}

	var diags []Diagnostic
	for _, s := range schemes {
		if allowed[s.Name()] {
			continue
		}
		pos := t.Fset.Position(s.Pos())
		file, line := relOrSame(t, pos.Filename), pos.Line
		if !implements(s.Type(), maskEncoder) {
			diags = append(diags, Diagnostic{
				File: file, Line: line, Analyzer: "contract",
				Message: fmt.Sprintf("%s implements %s but not %s: every scheme needs the bit-parallel fast path (or an entry in the contract allowlist for stateful exceptions)", s.Name(), cfg.Encoder, cfg.MaskEncoder),
			})
		}
		if !registered[s] {
			diags = append(diags, Diagnostic{
				File: file, Line: line, Analyzer: "contract",
				Message: fmt.Sprintf("%s is not constructed by any %s factory: schemes must be registered to be reachable by name", s.Name(), cfg.RegisterFunc),
			})
		}
		if !goldenRefs[s] {
			diags = append(diags, Diagnostic{
				File: file, Line: line, Analyzer: "contract",
				Message: fmt.Sprintf("%s is not referenced by %s: every scheme needs a pinned golden outcome", s.Name(), cfg.GoldenFile),
			})
		}
		if !fuzzRefs[s] && !(fuzzIterates && registered[s]) {
			diags = append(diags, Diagnostic{
				File: file, Line: line, Analyzer: "contract",
				Message: fmt.Sprintf("%s is not covered by %s in %s: reference it there or register it so the registry sweep reaches it", s.Name(), cfg.FuzzFunc, cfg.FuzzFile),
			})
		}
		if cfg.KernelFuzzFunc != "" && !kernelRefs[s] && !(kernelIterates && registered[s]) {
			diags = append(diags, Diagnostic{
				File: file, Line: line, Analyzer: "contract",
				Message: fmt.Sprintf("%s is not covered by %s in %s: every scheme's compiled kernel must be pinned against its EncodeInto oracle (reference it there or register it so the registry sweep reaches it)", s.Name(), cfg.KernelFuzzFunc, cfg.KernelFuzzFile),
			})
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// lookupInterface resolves a named interface in the package scope.
func lookupInterface(scope *types.Scope, name, pkgPath string) (*types.Interface, error) {
	obj := scope.Lookup(name)
	if obj == nil {
		return nil, fmt.Errorf("analysis: interface %s not found in %s", name, pkgPath)
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil, fmt.Errorf("analysis: %s.%s is not an interface", pkgPath, name)
	}
	return iface, nil
}

// implements reports whether T or *T satisfies the interface.
func implements(T types.Type, iface *types.Interface) bool {
	return types.Implements(T, iface) || types.Implements(types.NewPointer(T), iface)
}

// namedTypeName unwraps pointers and returns the type's *TypeName for
// named, non-interface types; nil otherwise.
func namedTypeName(T types.Type) *types.TypeName {
	if p, ok := T.(*types.Pointer); ok {
		T = p.Elem()
	}
	if n, ok := T.(*types.Named); ok && !types.IsInterface(T) {
		return n.Obj()
	}
	return nil
}

// registeredSchemes finds every Register call in the package's non-test
// files and credits the scheme types its factory argument constructs —
// directly (composite literals, conversions) or through one constructor
// call (NewOpt, QuantizeWeights, ...).
func registeredSchemes(t *Tree, d *Dir, l *loader, cfg ContractConfig, schemes []*types.TypeName) map[*types.TypeName]bool {
	schemeSet := make(map[*types.TypeName]bool, len(schemes))
	for _, s := range schemes {
		schemeSet[s] = true
	}
	credit := make(map[*types.TypeName]bool)
	for _, f := range d.Files {
		if f.Test || !buildable(f) {
			continue
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			if calleeName(call) != cfg.RegisterFunc {
				return true
			}
			factory := call.Args[len(call.Args)-1]
			ast.Inspect(factory, func(fn ast.Node) bool {
				expr, ok := fn.(ast.Expr)
				if !ok {
					return true
				}
				// Direct construction: any expression whose static type is
				// a scheme type.
				if tv, ok := l.info.Types[expr]; ok {
					if tn := namedTypeName(tv.Type); tn != nil && schemeSet[tn] {
						credit[tn] = true
					}
				}
				// One level of indirection: calls to constructors whose
				// results include a scheme type.
				if id, ok := expr.(*ast.Ident); ok {
					if fobj, ok := l.info.Uses[id].(*types.Func); ok {
						if sig, ok := fobj.Type().(*types.Signature); ok {
							for i := 0; i < sig.Results().Len(); i++ {
								if tn := namedTypeName(sig.Results().At(i).Type()); tn != nil && schemeSet[tn] {
									credit[tn] = true
								}
							}
						}
					}
				}
				return true
			})
			return true
		})
	}
	return credit
}

// calleeName returns the identifier a call invokes (unwrapping one
// selector), or "".
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// fileTypeRefs reports which scheme types the named file references, by
// type name or by the name of one of the type's constructors.
func fileTypeRefs(d *Dir, fileName string, schemes []*types.TypeName, ctorsOf map[*types.TypeName][]string) map[*types.TypeName]bool {
	refs := make(map[*types.TypeName]bool)
	var f *File
	for _, c := range d.Files {
		if strings.HasSuffix(c.Rel, "/"+fileName) || c.Rel == fileName {
			f = c
			break
		}
	}
	if f == nil {
		return refs
	}
	idents := make(map[string]bool)
	ast.Inspect(f.Ast, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			idents[id.Name] = true
		}
		return true
	})
	for _, s := range schemes {
		if idents[s.Name()] {
			refs[s] = true
			continue
		}
		for _, ctor := range ctorsOf[s] {
			if idents[ctor] {
				refs[s] = true
				break
			}
		}
	}
	return refs
}

// fuzzIteratesRegistry reports whether the named fuzz target's body calls
// the registry iterator, which makes the fuzz sweep cover every registered
// scheme automatically.
func fuzzIteratesRegistry(d *Dir, fileName, funcName, iter string) bool {
	for _, f := range d.Files {
		if !(strings.HasSuffix(f.Rel, "/"+fileName) || f.Rel == fileName) {
			continue
		}
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != funcName || fd.Body == nil {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && calleeName(call) == iter {
					found = true
				}
				return !found
			})
			return found
		}
	}
	return false
}

// relOrSame maps an absolute position filename back to a root-relative
// slash path when the file lies under the root.
func relOrSame(t *Tree, path string) string {
	rel, err := filepath.Rel(t.Root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return filepath.ToSlash(rel)
}
