package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// File is one parsed Go source file.
type File struct {
	Path string // absolute path
	Rel  string // path relative to the analysis root
	Src  []byte
	Ast  *ast.File
	Test bool // a _test.go file
}

// Dir is one parsed package directory: every .go file in it, test files
// included, regardless of build constraints. Analyzers that need a
// buildable file set (the type-checking loader) re-filter with buildable.
type Dir struct {
	Path  string // absolute directory
	Rel   string // directory relative to the analysis root
	Files []*File
}

// Tree is the parsed view of the analyzed module the AST-level analyzers
// share: one FileSet, every requested package directory.
type Tree struct {
	Root string // module root (absolute)
	Fset *token.FileSet
	Dirs []*Dir
}

// ParseTree parses the package directories selected by the go list
// patterns (defaulting to ./...) under the module rooted at root.
func ParseTree(root string, patterns ...string) (*Tree, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := listDirs(root, patterns)
	if err != nil {
		return nil, err
	}
	t := &Tree{Root: root, Fset: token.NewFileSet()}
	for _, d := range dirs {
		pd, err := t.parseDir(d)
		if err != nil {
			return nil, err
		}
		t.Dirs = append(t.Dirs, pd)
	}
	return t, nil
}

// listDirs expands go list patterns into package directories, using the go
// command so the selection matches the build exactly (testdata and ignored
// directories excluded, module boundaries honored).
func listDirs(root string, patterns []string) ([]string, error) {
	args := append([]string{"list", "-f", "{{.Dir}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	var dirs []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			dirs = append(dirs, line)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses every .go file of one directory into the tree's FileSet.
func (t *Tree) parseDir(dir string) (*Dir, error) {
	rel, err := filepath.Rel(t.Root, dir)
	if err != nil {
		rel = dir
	}
	pd := &Dir{Path: dir, Rel: filepath.ToSlash(rel)}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		af, err := parser.ParseFile(t.Fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		frel := name
		if pd.Rel != "." {
			frel = pd.Rel + "/" + name
		}
		pd.Files = append(pd.Files, &File{
			Path: path,
			Rel:  frel,
			Src:  src,
			Ast:  af,
			Test: strings.HasSuffix(name, "_test.go"),
		})
	}
	return pd, nil
}

// dir returns the parsed directory whose root-relative path is rel, or nil.
func (t *Tree) dir(rel string) *Dir {
	for _, d := range t.Dirs {
		if d.Rel == rel {
			return d
		}
	}
	return nil
}

// buildable reports whether the file participates in a default build
// (race detector off): its //go:build constraint, if any, must be
// satisfiable with the host GOOS/GOARCH and no extra tags. Legacy
// "// +build" lines are not consulted — the repo uses //go:build only.
func buildable(f *File) bool {
	for _, cg := range f.Ast.Comments {
		if cg.End() >= f.Ast.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return false
			}
			return expr.Eval(defaultTag)
		}
	}
	return true
}

// defaultTag is the build-tag assignment of a plain `go build` on the host:
// GOOS, GOARCH, the gc compiler, cgo, and every supported go1.N version
// tag. The race tag is (deliberately) false.
func defaultTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc", "cgo":
		return true
	}
	if rest, ok := strings.CutPrefix(tag, "go1."); ok {
		if minor, err := strconv.Atoi(rest); err == nil {
			cur := strings.TrimPrefix(runtime.Version(), "go1.")
			if dot := strings.IndexByte(cur, '.'); dot >= 0 {
				cur = cur[:dot]
			}
			if curMinor, err := strconv.Atoi(cur); err == nil {
				return minor <= curMinor
			}
		}
	}
	return false
}

// loader type-checks packages of the analyzed module from source. In-module
// import paths resolve by directory layout under the module root —
// cwd-independent, which the stdlib source importer is not — and
// everything else (the stdlib) delegates to the source importer. This is
// the whole type-checking stack: no export data, no x/tools.
type loader struct {
	tree   *Tree
	module string
	std    types.ImporterFrom
	pkgs   map[string]*types.Package
	info   *types.Info
}

// newLoader builds a loader for the tree's module.
func newLoader(t *Tree) (*loader, error) {
	module, err := modulePath(t.Root)
	if err != nil {
		return nil, err
	}
	return &loader{
		tree:   t,
		module: module,
		std:    importer.ForCompiler(t.Fset, "source", nil).(types.ImporterFrom),
		pkgs:   make(map[string]*types.Package),
		info: &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Uses:  make(map[*ast.Ident]types.Object),
			Defs:  make(map[*ast.Ident]types.Object),
		},
	}, nil
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.tree.Root, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		l.pkgs[path] = pkg
		return pkg, nil
	}
	pkg, err := l.std.ImportFrom(path, srcDir, 0)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// check type-checks one in-module package (non-test, buildable files only),
// resolving its imports through the loader itself. Type information for
// every checked package accumulates in l.info.
func (l *loader) check(path string) (*types.Package, error) {
	rel := "."
	if path != l.module {
		rel = strings.TrimPrefix(path, l.module+"/")
	}
	d := l.tree.dir(rel)
	if d == nil {
		// The package was not in the analyzed pattern set; parse it on
		// demand so partial trees (single-package analyses) still resolve
		// their in-module imports.
		pd, err := l.tree.parseDir(filepath.Join(l.tree.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, fmt.Errorf("analysis: resolving import %q: %w", path, err)
		}
		d = pd
	}
	var files []*ast.File
	for _, f := range d.Files {
		if !f.Test && buildable(f) {
			files = append(files, f.Ast)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files for %q in %s", path, d.Path)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.tree.Fset, files, l.info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return pkg, nil
}
