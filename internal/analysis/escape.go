package analysis

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// The escape gate: `go build -gcflags='<module>/...=-m'` makes the
// compiler print its escape analysis for every package of the module, and
// any "escapes to heap" / "moved to heap" diagnostic landing inside a
// //dbi:hotpath function fails the gate. The build cache replays compiler
// diagnostics, so repeated runs are cheap; and because this reads the
// compiler's verdict rather than counting runtime allocations, it holds
// identically under -race, where the AllocsPerRun tests must skip.

// escapeLine matches one compiler diagnostic: path:line:col: message.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// escapeVerbs are the diagnostic forms that mean a value was heap
// allocated. "leaking param" and inlining notes are informational and pass.
var escapeVerbs = []string{"escapes to heap", "moved to heap"}

// Escape runs the compiler's escape analysis over the module rooted at
// root and reports every heap escape inside one of the hotpath functions
// that is not waived by //dbi:allow-escape.
func Escape(root string, hot []*HotFunc) ([]Diagnostic, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("go", "build", fmt.Sprintf("-gcflags=%s/...=-m", module), "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("analysis: go build -gcflags=-m failed: %v\n%s", err, out)
	}
	return matchEscapes(string(out), hot), nil
}

// hotIndex groups hotpath functions by file for diagnostic matching.
func hotIndex(hot []*HotFunc) map[string][]*HotFunc {
	byFile := make(map[string][]*HotFunc)
	for _, h := range hot {
		byFile[h.File] = append(byFile[h.File], h)
	}
	return byFile
}

// matchEscapes maps compiler output onto the hotpath ranges. File paths in
// the output are relative to the module root (the build's working
// directory); absolute paths and "./"-prefixed forms are normalized.
func matchEscapes(out string, hot []*HotFunc) []Diagnostic {
	byFile := hotIndex(hot)
	var diags []Diagnostic
	seen := make(map[Diagnostic]bool)
	for _, line := range strings.Split(out, "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !isEscapeMsg(msg) {
			continue
		}
		file := filepath.ToSlash(filepath.Clean(m[1]))
		lineNo, _ := strconv.Atoi(m[2])
		for _, h := range byFile[file] {
			if lineNo < h.StartLine || lineNo > h.EndLine || h.Waived(lineNo) {
				continue
			}
			d := Diagnostic{
				File: file, Line: lineNo, Analyzer: "escape",
				Message: fmt.Sprintf("%s inside //dbi:hotpath func %s (cold-path allocations are waived with //dbi:allow-escape <reason>)", msg, h.Name),
			}
			if !seen[d] {
				seen[d] = true
				diags = append(diags, d)
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}

// isEscapeMsg reports whether a compiler diagnostic describes a heap
// allocation.
func isEscapeMsg(msg string) bool {
	for _, v := range escapeVerbs {
		if strings.Contains(msg, v) {
			return true
		}
	}
	return false
}
