package analysis

import (
	"fmt"
	"go/ast"
)

// Docs enforces doc comments on the exported surface of one package
// directory — for the repo, the dbiopt facade at the module root, the API
// users see on pkg.go.dev. Exported functions, methods, and the specs of
// exported type/var/const declarations all need a doc comment; a grouped
// declaration's shared doc covers every spec in the group.
func Docs(t *Tree, rel string) ([]Diagnostic, error) {
	d := t.dir(rel)
	if d == nil {
		return nil, fmt.Errorf("analysis: docs package dir %q not in the analyzed tree", rel)
	}
	var diags []Diagnostic
	for _, f := range d.Files {
		if f.Test || !buildable(f) {
			continue
		}
		for _, decl := range f.Ast.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Name.IsExported() && decl.Doc == nil {
					diags = append(diags, Diagnostic{
						File: f.Rel, Line: t.Fset.Position(decl.Pos()).Line, Analyzer: "hygiene",
						Message: fmt.Sprintf("exported %s %s has no doc comment: the facade is the documented surface", funcKind(decl), funcName(decl)),
					})
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					for _, name := range specNames(spec) {
						if !name.IsExported() {
							continue
						}
						if decl.Doc == nil && specDoc(spec) == nil {
							diags = append(diags, Diagnostic{
								File: f.Rel, Line: t.Fset.Position(name.Pos()).Line, Analyzer: "hygiene",
								Message: fmt.Sprintf("exported %s %s has no doc comment: the facade is the documented surface", declKind(decl), name.Name),
							})
						}
					}
				}
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// funcKind distinguishes functions from methods in diagnostics.
func funcKind(fd *ast.FuncDecl) string {
	if fd.Recv != nil {
		return "method"
	}
	return "function"
}

// specNames returns the identifiers a spec declares.
func specNames(spec ast.Spec) []*ast.Ident {
	switch spec := spec.(type) {
	case *ast.TypeSpec:
		return []*ast.Ident{spec.Name}
	case *ast.ValueSpec:
		return spec.Names
	}
	return nil
}

// specDoc returns the spec's own doc comment, if any.
func specDoc(spec ast.Spec) *ast.CommentGroup {
	switch spec := spec.(type) {
	case *ast.TypeSpec:
		return spec.Doc
	case *ast.ValueSpec:
		return spec.Doc
	}
	return nil
}

// declKind names a GenDecl's token for diagnostics ("type", "var",
// "const").
func declKind(decl *ast.GenDecl) string {
	return decl.Tok.String()
}
