package analysis

import "testing"

// baselineFixture mirrors DefaultBaseline for the baselinemod fixture.
var baselineFixture = BaselineConfig{
	BaselineFile: "bench_baseline.json",
	WorkflowFile: "ci.yml",
	BenchDir:     ".",
}

// TestBaselineFixture seeds all four drift shapes — a gate regex naming a
// ghost benchmark, a stale baseline entry, a baseline entry no gate runs
// (as a sub-benchmark, exercising name reduction), and a gated benchmark
// with no baseline entry — and asserts each surfaces once.
func TestBaselineFixture(t *testing.T) {
	tree := fixtureTree(t, "baselinemod")
	diags, err := Baseline(tree, baselineFixture)
	if err != nil {
		t.Fatal(err)
	}
	checkDiags(t, diags, []wantDiag{
		{"bench_baseline.json", 1, "baseline", "gated benchmark BenchmarkNew has no entry"},
		{"bench_baseline.json", 8, "baseline", `baseline entry "BenchmarkGone" has no declared Benchmark function`},
		{"bench_baseline.json", 12, "baseline", `baseline entry "BenchmarkUngated/sub=1" is not selected by any -bench regex`},
		{"ci.yml", 7, "baseline", "bench selection names BenchmarkGhost, which is not declared"},
	})
}
