package analysis

import "testing"

// baselineFixture mirrors DefaultBaseline for the baselinemod fixture.
var baselineFixture = BaselineConfig{
	BaselineFile: "bench_baseline.json",
	WorkflowFile: "ci.yml",
	BenchDir:     ".",
	LoadDir:      "loadcmd",
}

// TestBaselineFixture seeds every drift shape on both sides of the gate —
// for benchmarks: a gate regex naming a ghost benchmark, a stale baseline
// entry, a baseline entry no gate runs (as a sub-benchmark, exercising
// name reduction), and a gated benchmark with no baseline entry; for load
// scenarios: a workflow run naming a ghost preset, a stale latency entry,
// a latency entry no workflow run exercises, and a workflow-run preset
// with no latency entry — and asserts each surfaces once.
func TestBaselineFixture(t *testing.T) {
	tree := fixtureTree(t, "baselinemod")
	diags, err := Baseline(tree, baselineFixture)
	if err != nil {
		t.Fatal(err)
	}
	checkDiags(t, diags, []wantDiag{
		{"bench_baseline.json", 1, "baseline", "gated benchmark BenchmarkNew has no entry"},
		{"bench_baseline.json", 1, "baseline", `workflow-run preset "unadopted" has no latency entry`},
		{"bench_baseline.json", 8, "baseline", `baseline entry "BenchmarkGone" has no declared Benchmark function`},
		{"bench_baseline.json", 12, "baseline", `baseline entry "BenchmarkUngated/sub=1" is not selected by any -bench regex`},
		{"bench_baseline.json", 23, "baseline", `latency entry "big" is not exercised by any -preset run`},
		{"bench_baseline.json", 28, "baseline", `latency entry "vanished" has no declared preset`},
		{"ci.yml", 7, "baseline", "bench selection names BenchmarkGhost, which is not declared"},
		{"ci.yml", 14, "baseline", `load run names preset "phantom"`},
	})
}
