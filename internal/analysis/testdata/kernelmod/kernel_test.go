package kernelmod

import "testing"

// FuzzKernelEquivalence names Good directly instead of sweeping the
// registry; NoKernel is deliberately absent, seeding the kernel-coverage
// violation.
func FuzzKernelEquivalence(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		var enc Encoder = Good{}
		inv := enc.Encode(data)
		if m, ok := enc.(MaskEncoder); ok {
			if _, ok := m.EncodeMask(data); ok && len(inv) != len(data) {
				t.Fatal("kernel disagrees with oracle")
			}
		}
	})
}
