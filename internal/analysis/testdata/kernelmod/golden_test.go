package kernelmod

import "testing"

// TestGolden pins both schemes' outcomes.
func TestGolden(t *testing.T) {
	if got := (Good{}).Name(); got != "good" {
		t.Fatalf("Name() = %q", got)
	}
	if got := (NoKernel{}).Name(); got != "nokernel" {
		t.Fatalf("Name() = %q", got)
	}
}
