package kernelmod

import "testing"

// FuzzMaskEquivalence sweeps the registry, so every registered scheme is
// mask-fuzz-covered without being named here.
func FuzzMaskEquivalence(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, name := range Names() {
			enc := registry[name]()
			if me, ok := enc.(MaskEncoder); ok {
				me.EncodeMask(data)
			}
		}
	})
}
