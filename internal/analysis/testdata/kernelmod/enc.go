// Package kernelmod is the kernel-coverage fixture for the scheme-contract
// analyzer: both schemes satisfy every legacy clause (mask fast path,
// registration, golden pin, mask-equivalence fuzz via the registry sweep),
// but the kernel-equivalence fuzz target names its schemes directly instead
// of sweeping the registry, and NoKernel is deliberately absent from it.
package kernelmod

// Mask is the fixture's packed pattern type.
type Mask uint64

// Encoder is the fixture's scheme interface.
type Encoder interface {
	Name() string
	Encode(b []byte) []bool
}

// MaskEncoder is the fixture's fast-path interface.
type MaskEncoder interface {
	EncodeMask(b []byte) (Mask, bool)
}

var registry = map[string]func() Encoder{}

// Register adds a scheme factory under a name.
func Register(name string, factory func() Encoder) {
	registry[name] = factory
}

// Names lists the registered scheme names.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	return names
}

// Good satisfies every clause of the contract, including the
// kernel-equivalence pin.
type Good struct{}

// Name implements Encoder.
func (Good) Name() string { return "good" }

// Encode implements Encoder.
func (Good) Encode(b []byte) []bool { return make([]bool, len(b)) }

// EncodeMask implements MaskEncoder.
func (Good) EncodeMask(b []byte) (Mask, bool) { return 0, true }

// NoKernel satisfies every legacy clause but is absent from the
// kernel-equivalence fuzz target — the one seeded violation.
type NoKernel struct{}

// Name implements Encoder.
func (NoKernel) Name() string { return "nokernel" }

// Encode implements Encoder.
func (NoKernel) Encode(b []byte) []bool { return make([]bool, len(b)) }

// EncodeMask implements MaskEncoder.
func (NoKernel) EncodeMask(b []byte) (Mask, bool) { return 0, true }

func init() {
	Register("good", func() Encoder { return Good{} })
	Register("nokernel", func() Encoder { return NoKernel{} })
}
