module kernelmod

go 1.23
