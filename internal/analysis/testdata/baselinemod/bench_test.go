package baselinemod

import "testing"

// BenchmarkKept is gated and has a baseline entry: fully consistent.
func BenchmarkKept(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

// BenchmarkUngated has a baseline entry but no gate regex selects it.
func BenchmarkUngated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

// BenchmarkNew is gated but has no baseline entry yet.
func BenchmarkNew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = i
	}
}
