// Command loadcmd stands in for the load generator in the baseline-drift
// fixture; only the presets map's keys matter to the analyzer.
package main

// scenario is a stand-in for the load configuration the real command keys
// its presets on.
type scenario struct {
	conns int
}

var presets = map[string]scenario{
	// smoke is declared, workflow-run, and baselined: fully consistent.
	"smoke": {conns: 1},
	// big is declared and baselined but no workflow run exercises it.
	"big": {conns: 8},
	// unadopted is declared and workflow-run but missing from the baseline.
	"unadopted": {conns: 2},
}

func main() {
	_ = presets
}
