module baselinemod

go 1.23
