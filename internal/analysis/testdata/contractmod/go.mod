module contractmod

go 1.23
