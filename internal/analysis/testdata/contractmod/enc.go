// Package contractmod is a scheme-contract fixture: a miniature registry
// with one fully compliant scheme (Good), one allowlisted exception
// (Allowed), one that violates every clause (Bad), and one missing only its
// golden coverage and registered through a constructor (NoGolden).
package contractmod

// Mask is the fixture's packed pattern type.
type Mask uint64

// Encoder is the fixture's scheme interface.
type Encoder interface {
	Name() string
	Encode(b []byte) []bool
}

// MaskEncoder is the fixture's fast-path interface.
type MaskEncoder interface {
	EncodeMask(b []byte) (Mask, bool)
}

var registry = map[string]func() Encoder{}

// Register adds a scheme factory under a name.
func Register(name string, factory func() Encoder) {
	registry[name] = factory
}

// Names lists the registered scheme names.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	return names
}

// Good satisfies every clause of the contract.
type Good struct{}

// Name implements Encoder.
func (Good) Name() string { return "good" }

// Encode implements Encoder.
func (Good) Encode(b []byte) []bool { return make([]bool, len(b)) }

// EncodeMask implements MaskEncoder.
func (Good) EncodeMask(b []byte) (Mask, bool) { return 0, true }

// Allowed implements Encoder only, but sits on the allowlist.
type Allowed struct{}

// Name implements Encoder.
func (Allowed) Name() string { return "allowed" }

// Encode implements Encoder.
func (Allowed) Encode(b []byte) []bool { return make([]bool, len(b)) }

// Bad violates every clause: no mask fast path, never registered, absent
// from the golden and fuzz files.
type Bad struct{}

// Name implements Encoder.
func (Bad) Name() string { return "bad" }

// Encode implements Encoder.
func (Bad) Encode(b []byte) []bool { return make([]bool, len(b)) }

// NoGolden is compliant except for golden coverage, and is registered
// through its constructor rather than a literal.
type NoGolden struct{}

// NewNoGolden constructs a NoGolden.
func NewNoGolden() NoGolden { return NoGolden{} }

// Name implements Encoder.
func (NoGolden) Name() string { return "nogolden" }

// Encode implements Encoder.
func (NoGolden) Encode(b []byte) []bool { return make([]bool, len(b)) }

// EncodeMask implements MaskEncoder.
func (NoGolden) EncodeMask(b []byte) (Mask, bool) { return 0, true }

func init() {
	Register("good", func() Encoder { return Good{} })
	Register("nogolden", func() Encoder { return NewNoGolden() })
}
