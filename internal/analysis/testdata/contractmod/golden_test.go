package contractmod

import "testing"

// TestGolden pins Good's outcome; Bad and NoGolden are deliberately absent.
func TestGolden(t *testing.T) {
	if got := (Good{}).Name(); got != "good" {
		t.Fatalf("Name() = %q", got)
	}
}
