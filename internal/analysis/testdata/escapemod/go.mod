module escapemod

go 1.23
