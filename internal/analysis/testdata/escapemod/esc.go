// Package escapemod is an escape-gate fixture: one hotpath function with a
// seeded heap escape, one clean, one with a waived escape, one whose local
// is moved to the heap by a closure.
package escapemod

// Leak returns a fresh heap allocation from a hot path: the seeded
// violation the gate must report.
//
//dbi:hotpath
func Leak() *int {
	x := new(int)
	return x
}

// Clean allocates nothing; the gate must stay silent on it.
//
//dbi:hotpath
func Clean(a, b int) int {
	return a + b
}

// Waived allocates, but the line carries a waiver; the gate must honor it.
//
//dbi:hotpath
func Waived() *int {
	return new(int) //dbi:allow-escape fixture waiver
}

// Moved captures a local in a returned closure, forcing the compiler to
// move it to the heap: the other diagnostic verb the gate matches.
//
//dbi:hotpath
func Moved() func() int {
	x := 0
	return func() int {
		x++
		return x
	}
}
