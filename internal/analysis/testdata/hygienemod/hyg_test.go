package hygienemod

import "testing"

// TestHotInTestFile carries a hotpath directive in a _test.go file, which
// the gate cannot enforce.
//
//dbi:hotpath
func TestHotInTestFile(t *testing.T) {
	if Hot(1) != 2 {
		t.Fatal("Hot")
	}
}
