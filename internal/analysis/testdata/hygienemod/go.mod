module hygienemod

go 1.23
