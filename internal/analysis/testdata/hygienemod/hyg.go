// Package hygienemod is a directive/doc hygiene fixture: every seeded
// violation below must surface as exactly one diagnostic.
package hygienemod

// Frob carries an unknown directive verb.
//
//dbi:frobnicate hard
func Frob() int { return 1 }

//dbi:hotpath

// Stray sits below a detached hotpath directive: the blank line above this
// comment severs it from the declaration, so it is not a doc comment.
func Stray() int { return 2 }

// Hot is a valid hot path hosting the waiver violations below.
//
//dbi:hotpath
func Hot(n int) int {
	m := n * 2 //dbi:allow-escape
	return m
}

// Cold is not a hot path, so its waiver has no effect.
func Cold(n int) int {
	return n + 1 //dbi:allow-escape pointless here
}

func Undocumented() int { return 3 }
