// Package analysis is the repo's stdlib-only static analysis suite, run by
// cmd/dbivet and the dbivet CI job. It enforces, at compile time, the
// invariants the runtime test suite can only sample:
//
//   - escape: no heap escape inside a //dbi:hotpath function. The hot
//     paths' zero-allocation guarantees (DESIGN.md §8/§9) are pinned at
//     runtime by AllocsPerRun tests that skip themselves under -race; this
//     gate reads the compiler's own escape analysis instead, so it holds on
//     every build configuration. Cold-path allocations are waived line by
//     line with //dbi:allow-escape <reason>.
//   - contract: every Encoder implementation in the scheme package also
//     implements the bit-parallel MaskEncoder fast path, is constructible
//     through the registry, and is pinned by the golden tests and the mask
//     equivalence fuzz target (stateful exceptions are allowlisted).
//   - baseline: bench_baseline.json entries, declared Benchmark functions
//     and the CI bench-gate selection agree in both directions, so a
//     renamed benchmark or a stale baseline entry fails lint instead of
//     surfacing as a runtime bench-gate miss.
//   - hygiene: //dbi: directives outside the known grammar are errors, and
//     every exported identifier of the dbiopt facade carries a doc comment.
//
// Everything here uses only go/parser, go/ast, go/types (with the source
// importer) and the go command already required to build the module — by
// design, the repo's zero-external-dependency policy extends to its static
// checks (no x/tools, no staticcheck).
package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, positioned at a file and line of the
// analyzed tree. File is relative to the analysis root when the file lies
// under it.
type Diagnostic struct {
	File     string
	Line     int
	Analyzer string // "escape", "contract", "baseline" or "hygiene"
	Message  string
}

// String renders the finding in the file:line: analyzer: message shape the
// CI log and editors understand.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.File, d.Line, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by file, line, analyzer and message, so
// runs are deterministic and diffable.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// ModuleRoot walks upward from dir to the nearest directory containing a
// go.mod, the root every analyzer resolves paths against.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// modulePath reads the module path from the go.mod at root.
func modulePath(root string) (string, error) {
	src, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}
