package analysis

import (
	"strings"
	"testing"
)

// TestEscapeFixture seeds heap escapes in hotpath functions of the
// escapemod fixture and asserts the gate reports exactly the unwaived ones.
func TestEscapeFixture(t *testing.T) {
	tree := fixtureTree(t, "escapemod")
	hot, hygiene := Directives(tree)
	if len(hygiene) != 0 {
		t.Fatalf("unexpected hygiene findings in fixture: %v", hygiene)
	}
	if len(hot) != 4 {
		t.Fatalf("hotpath funcs = %d, want 4 (%v)", len(hot), hot)
	}

	diags, err := Escape(tree.Root, hot)
	if err != nil {
		t.Fatal(err)
	}
	checkDiags(t, diags, []wantDiag{
		{"esc.go", 11, "escape", "escapes to heap inside //dbi:hotpath func Leak"},
		{"esc.go", 34, "escape", "moved to heap: x inside //dbi:hotpath func Moved"},
		{"esc.go", 35, "escape", "escapes to heap inside //dbi:hotpath func Moved"},
	})
	for _, d := range diags {
		if strings.Contains(d.Message, "Clean") || strings.Contains(d.Message, "Waived") {
			t.Errorf("diagnostic attributed to a clean or waived function: %s", d)
		}
	}
}
