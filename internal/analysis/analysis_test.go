package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// fixtureTree parses one of the self-contained fixture modules under
// testdata. Each fixture carries its own go.mod so the go command treats it
// as a real module root.
func fixtureTree(t *testing.T, name string) *Tree {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := ParseTree(root)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// wantDiag is one expected finding: exact position and analyzer, and a
// distinctive fragment of the message.
type wantDiag struct {
	file     string
	line     int
	analyzer string
	contains string
}

// checkDiags asserts the diagnostics match the expectations one to one, in
// order (analyzers sort their output).
func checkDiags(t *testing.T, got []Diagnostic, want []wantDiag) {
	t.Helper()
	for i, d := range got {
		if i >= len(want) {
			t.Errorf("unexpected extra diagnostic: %s", d)
			continue
		}
		w := want[i]
		if d.File != w.file || d.Line != w.line || d.Analyzer != w.analyzer {
			t.Errorf("diagnostic %d = %s:%d: %s:, want %s:%d: %s:", i, d.File, d.Line, d.Analyzer, w.file, w.line, w.analyzer)
		}
		if !strings.Contains(d.Message, w.contains) {
			t.Errorf("diagnostic %d message %q does not contain %q", i, d.Message, w.contains)
		}
	}
	for i := len(got); i < len(want); i++ {
		t.Errorf("missing expected diagnostic %s:%d: %s: ...%s...", want[i].file, want[i].line, want[i].analyzer, want[i].contains)
	}
}

// TestCleanTree runs the full analyzer suite on the repository itself: the
// tree dbivet gates in CI must stay clean, and this is the local copy of
// that gate. Skipped in -short runs: the escape pass invokes the compiler
// over the whole module.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("escape analysis rebuilds the module; skipped in -short")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := ParseTree(root)
	if err != nil {
		t.Fatal(err)
	}

	hot, hygiene := Directives(tree)
	if len(hot) == 0 {
		t.Fatal("no //dbi:hotpath functions found; the escape gate would be vacuous")
	}
	if len(hygiene) != 0 {
		t.Errorf("hygiene findings on the clean tree: %v", hygiene)
	}

	docs, err := Docs(tree, ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 0 {
		t.Errorf("doc findings on the clean tree: %v", docs)
	}

	escapes, err := Escape(root, hot)
	if err != nil {
		t.Fatal(err)
	}
	if len(escapes) != 0 {
		t.Errorf("escape findings on the clean tree: %v", escapes)
	}

	contract, err := Contract(tree, DefaultContract)
	if err != nil {
		t.Fatal(err)
	}
	if len(contract) != 0 {
		t.Errorf("contract findings on the clean tree: %v", contract)
	}

	baseline, err := Baseline(tree, DefaultBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) != 0 {
		t.Errorf("baseline findings on the clean tree: %v", baseline)
	}
}
