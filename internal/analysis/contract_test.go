package analysis

import "testing"

// contractFixture mirrors DefaultContract for the contractmod fixture.
var contractFixture = ContractConfig{
	PackagePath:  "contractmod",
	Encoder:      "Encoder",
	MaskEncoder:  "MaskEncoder",
	RegisterFunc: "Register",
	GoldenFile:   "golden_test.go",
	FuzzFile:     "fuzz_test.go",
	FuzzFunc:     "FuzzMaskEquivalence",
	RegistryIter: "Names",
	Allow:        []string{"Allowed"},
}

// TestContractFixture seeds one scheme violating every clause (Bad), one
// missing only golden coverage (NoGolden), one compliant (Good) and one
// allowlisted (Allowed), and asserts exactly the seeded violations surface.
func TestContractFixture(t *testing.T) {
	tree := fixtureTree(t, "contractmod")
	diags, err := Contract(tree, contractFixture)
	if err != nil {
		t.Fatal(err)
	}
	checkDiags(t, diags, []wantDiag{
		{"enc.go", 60, "contract", "Bad implements Encoder but not MaskEncoder"},
		{"enc.go", 60, "contract", "Bad is not constructed by any Register factory"},
		{"enc.go", 60, "contract", "Bad is not covered by FuzzMaskEquivalence"},
		{"enc.go", 60, "contract", "Bad is not referenced by golden_test.go"},
		{"enc.go", 70, "contract", "NoGolden is not referenced by golden_test.go"},
	})
}

// kernelFixture adds the kernel-equivalence clause over the kernelmod
// fixture; contractFixture leaves KernelFuzzFunc empty, covering the
// disabled path.
var kernelFixture = ContractConfig{
	PackagePath:    "kernelmod",
	Encoder:        "Encoder",
	MaskEncoder:    "MaskEncoder",
	RegisterFunc:   "Register",
	GoldenFile:     "golden_test.go",
	FuzzFile:       "fuzz_test.go",
	FuzzFunc:       "FuzzMaskEquivalence",
	RegistryIter:   "Names",
	KernelFuzzFile: "kernel_test.go",
	KernelFuzzFunc: "FuzzKernelEquivalence",
}

// TestKernelContractFixture seeds a scheme (NoKernel) that satisfies every
// legacy clause but is absent from the kernel-equivalence fuzz target —
// whose body names schemes directly rather than sweeping the registry — and
// asserts exactly that violation surfaces, at the type's declaration.
func TestKernelContractFixture(t *testing.T) {
	tree := fixtureTree(t, "kernelmod")
	diags, err := Contract(tree, kernelFixture)
	if err != nil {
		t.Fatal(err)
	}
	checkDiags(t, diags, []wantDiag{
		{"enc.go", 53, "contract", "NoKernel is not covered by FuzzKernelEquivalence in kernel_test.go"},
	})
}
