package phy

import (
	"math"
	"testing"
	"testing/quick"

	"dbiopt/internal/bus"
)

func TestPresets(t *testing.T) {
	cases := []struct {
		link Link
		vddq float64
	}{
		{POD135(3*PicoFarad, 12*Gbps), 1.35},
		{POD15(3*PicoFarad, 12*Gbps), 1.5},
		{POD12(3*PicoFarad, 12*Gbps), 1.2},
	}
	for _, c := range cases {
		if c.link.VDDQ != c.vddq {
			t.Errorf("VDDQ = %g, want %g", c.link.VDDQ, c.vddq)
		}
		if err := c.link.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
}

func TestValidate(t *testing.T) {
	good := POD135(3*PicoFarad, 12*Gbps)
	bad := []Link{
		{},
		{VDDQ: -1, Rpullup: 60, Rpulldown: 40, Cload: 1e-12, DataRate: 1e9},
		{VDDQ: 1.35, Rpullup: 0, Rpulldown: 40, Cload: 1e-12, DataRate: 1e9},
		{VDDQ: 1.35, Rpullup: 60, Rpulldown: -40, Cload: 1e-12, DataRate: 1e9},
		{VDDQ: 1.35, Rpullup: 60, Rpulldown: 40, Cload: -1e-12, DataRate: 1e9},
		{VDDQ: 1.35, Rpullup: 60, Rpulldown: 40, Cload: 1e-12, DataRate: 0},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good link rejected: %v", err)
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad link accepted: %+v", l)
		}
	}
}

// TestEquations pins eq. 1-3 against hand-computed values for the paper's
// POD135 / 60Ω / 40Ω operating point.
func TestEquations(t *testing.T) {
	l := POD135(3*PicoFarad, 4*Gbps)
	// Vswing = 1.35 * 60/100 = 0.81 V
	if got := l.Vswing(); math.Abs(got-0.81) > 1e-12 {
		t.Errorf("Vswing = %g, want 0.81", got)
	}
	// Ezero = 1.35² / 100 / 4e9 = 4.556e-12 J
	if got := l.Ezero(); math.Abs(got-1.35*1.35/100/4e9) > 1e-20 {
		t.Errorf("Ezero = %g", got)
	}
	// Etransition = 0.5 * 1.35 * 0.81 * 3e-12 = 1.640e-12 J
	if got := l.Etransition(); math.Abs(got-0.5*1.35*0.81*3e-12) > 1e-20 {
		t.Errorf("Etransition = %g", got)
	}
}

// TestBurstEnergyLinearity: eq. 4 is linear in the activity counts.
func TestBurstEnergyLinearity(t *testing.T) {
	l := POD135(3*PicoFarad, 12*Gbps)
	f := func(z, tr uint8) bool {
		c := bus.Cost{Zeros: int(z), Transitions: int(tr)}
		want := float64(z)*l.Ezero() + float64(tr)*l.Etransition()
		return math.Abs(l.BurstEnergy(c)-want) < 1e-24
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEzeroShrinksWithRate: the DC term is inversely proportional to the
// data rate, the effect that moves the optimum from DC to AC coding.
func TestEzeroShrinksWithRate(t *testing.T) {
	slow := POD135(3*PicoFarad, 1*Gbps)
	fast := POD135(3*PicoFarad, 16*Gbps)
	if !(fast.Ezero() < slow.Ezero()) {
		t.Error("Ezero should shrink with rate")
	}
	if math.Abs(fast.Ezero()*16-slow.Ezero()) > 1e-20 {
		t.Error("Ezero not inversely proportional to rate")
	}
	if fast.Etransition() != slow.Etransition() {
		t.Error("Etransition must be rate-independent")
	}
}

// TestEtransitionGrowsWithLoad: the AC term is proportional to cload.
func TestEtransitionGrowsWithLoad(t *testing.T) {
	l1 := POD135(1*PicoFarad, 12*Gbps)
	l8 := POD135(8*PicoFarad, 12*Gbps)
	if math.Abs(l8.Etransition()-8*l1.Etransition()) > 1e-20 {
		t.Error("Etransition not proportional to cload")
	}
}

// TestWeightsNormalization: normalised weights sum to one and preserve the
// alpha:beta ratio.
func TestWeightsNormalization(t *testing.T) {
	l := POD135(3*PicoFarad, 12*Gbps)
	w := l.Weights()
	nw := l.NormalizedWeights()
	if math.Abs(nw.Alpha+nw.Beta-1) > 1e-12 {
		t.Errorf("normalised weights sum to %g", nw.Alpha+nw.Beta)
	}
	if math.Abs(w.Alpha*nw.Beta-w.Beta*nw.Alpha) > 1e-24 {
		t.Error("normalisation changed the ratio")
	}
	if w.Alpha != l.Etransition() || w.Beta != l.Ezero() {
		t.Error("weights must be (Etransition, Ezero)")
	}
}

// TestCrossoverRateMatchesPaper: with POD135 and 3 pF, the rate where the
// AC share reaches 0.56 — where the paper says DBI AC overtakes DBI DC —
// must land near 14 Gbps, the paper's point of maximum gain.
func TestCrossoverRateMatchesPaper(t *testing.T) {
	l := POD135(3*PicoFarad, 12*Gbps)
	f := l.CrossoverRate(0.56)
	if f < 12*Gbps || f > 16*Gbps {
		t.Errorf("crossover rate = %.2f Gbps, paper's maximum gain sits near 14", f/Gbps)
	}
	// Consistency: at the returned rate the normalised alpha equals the
	// requested fraction.
	at := POD135(3*PicoFarad, f)
	if got := at.NormalizedWeights().Alpha; math.Abs(got-0.56) > 1e-9 {
		t.Errorf("alpha at crossover = %g, want 0.56", got)
	}
}

// TestCrossoverRateEdges covers the degenerate fractions.
func TestCrossoverRateEdges(t *testing.T) {
	l := POD135(3*PicoFarad, 12*Gbps)
	if !math.IsNaN(l.CrossoverRate(0)) || !math.IsNaN(l.CrossoverRate(1)) || !math.IsNaN(l.CrossoverRate(-0.5)) {
		t.Error("out-of-range fraction should return NaN")
	}
	zeroLoad := POD135(0, 12*Gbps)
	if !math.IsInf(zeroLoad.CrossoverRate(0.5), 1) {
		t.Error("zero-load crossover should be +Inf")
	}
}

// TestString smoke-tests the formatter.
func TestString(t *testing.T) {
	if s := POD135(3*PicoFarad, 12*Gbps).String(); s == "" {
		t.Error("empty String()")
	}
}

// TestSSTLModel: both levels cost the same DC energy, so bursts with equal
// transition counts cost the same regardless of zero count — the property
// that makes DBI pointless on SSTL.
func TestSSTLModel(t *testing.T) {
	s := SSTL15(3*PicoFarad, 1.6*Gbps)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	allZeros := bus.Cost{Zeros: 72, Transitions: 10}
	allOnes := bus.Cost{Zeros: 0, Transitions: 10}
	if s.BurstEnergy(allZeros, 8, 9) != s.BurstEnergy(allOnes, 8, 9) {
		t.Error("SSTL energy must not depend on the zero count")
	}
	more := bus.Cost{Zeros: 0, Transitions: 20}
	if !(s.BurstEnergy(more, 8, 9) > s.BurstEnergy(allOnes, 8, 9)) {
		t.Error("transitions must still cost energy on SSTL")
	}
	if s.Vswing() <= 0 || s.Ebit() <= 0 || s.Etransition() <= 0 {
		t.Error("non-positive SSTL characteristics")
	}
}

// TestSSTLValidate covers the SSTL guard rails.
func TestSSTLValidate(t *testing.T) {
	bad := []SSTL{
		{},
		{VDDQ: 1.5, Rterm: 0, Rdriver: 34, Cload: 1e-12, DataRate: 1e9},
		{VDDQ: 1.5, Rterm: 50, Rdriver: 34, Cload: -1, DataRate: 1e9},
		{VDDQ: 1.5, Rterm: 50, Rdriver: 34, Cload: 1e-12, DataRate: 0},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad SSTL accepted: %+v", s)
		}
	}
}
