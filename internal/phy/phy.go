// Package phy models the electrical interface energy of pseudo open drain
// (POD) memory links, following the CACTI-IO-derived model of the DATE 2018
// paper "Optimal DC/AC Data Bus Inversion Coding" (§IV-A).
//
// A POD link terminates to VDDQ, so DC current through the termination
// flows only while a wire drives a zero; transmitting a one is free of DC
// current. Each wire transition additionally charges or discharges the
// lumped load capacitance. The model unifies all load capacitances into a
// single cload and expresses both effects as energy per activity:
//
//	Ezero       = VDDQ² / (Rpullup + Rpulldown) · 1/f        (eq. 1)
//	Etransition = ½ · VDDQ · Vswing · cload                  (eq. 2)
//	Vswing      = VDDQ · Rpullup / (Rpullup + Rpulldown)     (eq. 3)
//	Eburst      = nzeros·Ezero + ntransitions·Etransition    (eq. 4)
//
// where f is the per-pin data rate: a zero occupies the wire for one unit
// interval 1/f, so the DC term shrinks as the link gets faster while the
// transition term is rate-independent. This is what moves the optimum from
// DC-style to AC-style coding as data rates grow.
package phy

import (
	"fmt"
	"math"

	"dbiopt/internal/bus"
	"dbiopt/internal/dbi"
)

// Link describes one POD-signalled wire group electrically. The zero value
// is not usable; construct via a preset or fill every field and Validate.
type Link struct {
	// VDDQ is the I/O supply voltage in volts (1.35 V for POD135/GDDR5X,
	// 1.2 V for POD12/DDR4).
	VDDQ float64
	// Rpullup is the on-die termination resistance to VDDQ in ohms.
	Rpullup float64
	// Rpulldown is the output driver pulldown resistance in ohms.
	Rpulldown float64
	// Cload is the unified load capacitance per wire in farads: driver,
	// receiver pads, package and trace lumped together. Typical DDR4/GDDR5
	// systems land between 1 pF and 8 pF.
	Cload float64
	// DataRate is the per-pin data rate in bit/s; one unit interval is
	// 1/DataRate.
	DataRate float64
}

// Typical termination values for a POD interface; CACTI-IO and published
// GDDR5 IBIS models put the ODT pull-up near 60 ohm and the driver pull-down
// near 40 ohm.
const (
	DefaultRpullup   = 60.0
	DefaultRpulldown = 40.0
)

// PicoFarad is 1e-12 F, for readable Cload literals.
const PicoFarad = 1e-12

// Gbps is 1e9 bit/s, for readable DataRate literals.
const Gbps = 1e9

// POD135 returns a GDDR5X-style link (VDDQ = 1.35 V) at the given load and
// data rate. This is the configuration behind the paper's Fig. 7.
func POD135(cload, dataRate float64) Link {
	return Link{VDDQ: 1.35, Rpullup: DefaultRpullup, Rpulldown: DefaultRpulldown,
		Cload: cload, DataRate: dataRate}
}

// POD15 returns a POD15 (JESD8-20A, 1.5 V) link.
func POD15(cload, dataRate float64) Link {
	return Link{VDDQ: 1.5, Rpullup: DefaultRpullup, Rpulldown: DefaultRpulldown,
		Cload: cload, DataRate: dataRate}
}

// POD12 returns a DDR4-style link (VDDQ = 1.2 V). The paper notes its
// results for POD12 are almost identical to POD135.
func POD12(cload, dataRate float64) Link {
	return Link{VDDQ: 1.2, Rpullup: DefaultRpullup, Rpulldown: DefaultRpulldown,
		Cload: cload, DataRate: dataRate}
}

// Validate reports an error if any parameter is non-physical.
func (l Link) Validate() error {
	switch {
	case !(l.VDDQ > 0):
		return fmt.Errorf("phy: VDDQ must be positive, got %g", l.VDDQ)
	case !(l.Rpullup > 0) || !(l.Rpulldown > 0):
		return fmt.Errorf("phy: termination resistances must be positive, got Rpullup=%g Rpulldown=%g",
			l.Rpullup, l.Rpulldown)
	case !(l.Cload >= 0):
		return fmt.Errorf("phy: Cload must be non-negative, got %g", l.Cload)
	case !(l.DataRate > 0):
		return fmt.Errorf("phy: DataRate must be positive, got %g", l.DataRate)
	}
	return nil
}

// Vswing is the signal swing in volts (eq. 3): the voltage divider formed by
// the pulldown driver against the pull-up termination.
func (l Link) Vswing() float64 {
	return l.VDDQ * l.Rpullup / (l.Rpullup + l.Rpulldown)
}

// Ezero is the energy in joules of transmitting a single zero for one unit
// interval (eq. 1).
func (l Link) Ezero() float64 {
	return l.VDDQ * l.VDDQ / (l.Rpullup + l.Rpulldown) / l.DataRate
}

// Etransition is the energy in joules of one wire transition (eq. 2).
func (l Link) Etransition() float64 {
	return 0.5 * l.VDDQ * l.Vswing() * l.Cload
}

// BurstEnergy is the interface energy in joules of a transmission with the
// given activity counts (eq. 4).
func (l Link) BurstEnergy(c bus.Cost) float64 {
	return float64(c.Zeros)*l.Ezero() + float64(c.Transitions)*l.Etransition()
}

// Weights converts the link's operating point into the (alpha, beta) weights
// an optimal encoder should minimise: alpha = Etransition, beta = Ezero.
// Scaling is irrelevant to the encoder, so the raw joule values are used.
func (l Link) Weights() dbi.Weights {
	return dbi.Weights{Alpha: l.Etransition(), Beta: l.Ezero()}
}

// NormalizedWeights returns the weights scaled so alpha + beta = 1, the
// axis convention of the paper's Fig. 3 and 4 ("AC cost" alpha from 0 to 1,
// "DC cost" beta = 1 - alpha).
func (l Link) NormalizedWeights() dbi.Weights {
	a, b := l.Etransition(), l.Ezero()
	s := a + b
	if s == 0 {
		return dbi.Weights{}
	}
	return dbi.Weights{Alpha: a / s, Beta: b / s}
}

// CrossoverRate returns the data rate at which the AC cost share
// Etransition/(Etransition+Ezero) reaches the given fraction in (0,1).
// With the paper's parameters (POD135, 3 pF), fraction 0.56 — where DBI AC
// overtakes DBI DC — lands near 14 Gbps, the paper's point of maximum gain.
func (l Link) CrossoverRate(fraction float64) float64 {
	if !(fraction > 0 && fraction < 1) {
		return math.NaN()
	}
	et := l.Etransition()
	if et == 0 {
		return math.Inf(1)
	}
	// Etransition/(Etransition + Ezero(f)) = fraction
	// => Ezero(f) = Etransition*(1-fraction)/fraction
	// => f = VDDQ²/(R·EzeroTarget)
	target := et * (1 - fraction) / fraction
	return l.VDDQ * l.VDDQ / (l.Rpullup + l.Rpulldown) / target
}

// String summarises the operating point.
func (l Link) String() string {
	return fmt.Sprintf("POD %.2fV Rpu=%.0fΩ Rpd=%.0fΩ Cload=%.1fpF @%.1fGbps (Ezero=%.3gpJ Etrans=%.3gpJ)",
		l.VDDQ, l.Rpullup, l.Rpulldown, l.Cload/PicoFarad, l.DataRate/Gbps,
		l.Ezero()*1e12, l.Etransition()*1e12)
}
