package phy

import (
	"fmt"

	"dbiopt/internal/bus"
)

// SSTL models the centre-tapped-termination interface used before POD
// (DDR2/DDR3): the line terminates to VDDQ/2, so DC current flows whichever
// level is driven — transmitting a one and transmitting a zero cost the
// same. DBI coding therefore cannot save termination energy on SSTL; the
// model exists to demonstrate exactly that contrast (as the paper's
// introduction does) and to let workloads be compared across interface
// generations.
type SSTL struct {
	VDDQ     float64 // supply voltage in volts (1.5 V for DDR3 SSTL-15)
	Rterm    float64 // effective termination resistance to VDDQ/2, ohms
	Rdriver  float64 // driver output resistance, ohms
	Cload    float64 // lumped load capacitance, farads
	DataRate float64 // per-pin data rate, bit/s
}

// SSTL15 returns a DDR3-style SSTL link at the given load and data rate.
func SSTL15(cload, dataRate float64) SSTL {
	return SSTL{VDDQ: 1.5, Rterm: 50, Rdriver: 34, Cload: cload, DataRate: dataRate}
}

// Validate reports an error if any parameter is non-physical.
func (s SSTL) Validate() error {
	switch {
	case !(s.VDDQ > 0):
		return fmt.Errorf("phy: SSTL VDDQ must be positive, got %g", s.VDDQ)
	case !(s.Rterm > 0) || !(s.Rdriver > 0):
		return fmt.Errorf("phy: SSTL resistances must be positive, got Rterm=%g Rdriver=%g", s.Rterm, s.Rdriver)
	case !(s.Cload >= 0):
		return fmt.Errorf("phy: SSTL Cload must be non-negative, got %g", s.Cload)
	case !(s.DataRate > 0):
		return fmt.Errorf("phy: SSTL DataRate must be positive, got %g", s.DataRate)
	}
	return nil
}

// Ebit is the DC termination energy of driving either level for one unit
// interval: the line sits at VDDQ/2 ± swing/2, so a current of roughly
// (VDDQ/2)/(Rterm+Rdriver) flows regardless of the level.
func (s SSTL) Ebit() float64 {
	v := s.VDDQ / 2
	return v * v / (s.Rterm + s.Rdriver) / s.DataRate
}

// Vswing is the SSTL signal swing.
func (s SSTL) Vswing() float64 {
	return s.VDDQ * s.Rterm / (s.Rterm + s.Rdriver)
}

// Etransition is the dynamic energy of one wire transition.
func (s SSTL) Etransition() float64 {
	return 0.5 * s.VDDQ * s.Vswing() * s.Cload
}

// BurstEnergy charges every transmitted bit the same DC energy (zeros and
// ones alike) plus the transition energy; beats is the number of beats and
// wires the wire count, so beats*wires bits are paid for.
func (s SSTL) BurstEnergy(c bus.Cost, beats, wires int) float64 {
	bits := float64(beats * wires)
	return bits*s.Ebit() + float64(c.Transitions)*s.Etransition()
}
