package phy

import (
	"testing"

	"dbiopt/internal/bus"
)

func TestMeasureSSOHandCase(t *testing.T) {
	// One lane, two beats, from idle (all ones, DBI high):
	// beat 0: 0x0F plain -> 4 data wires fall, DBI stays: 4 switching
	// beat 1: 0xF0 plain -> all 8 data wires flip: 8 switching
	w := bus.Apply(bus.Burst{0x0F, 0xF0}, []bool{false, false})
	p, err := MeasureSSO([]bus.LineState{bus.InitialLineState}, []bus.Wire{w})
	if err != nil {
		t.Fatal(err)
	}
	if p.Beats != 2 || p.Max != 8 || p.Total != 12 {
		t.Errorf("profile = %+v", p)
	}
	if p.Hist[4] != 1 || p.Hist[8] != 1 {
		t.Errorf("hist = %v", p.Hist)
	}
	if p.Mean() != 6 {
		t.Errorf("mean = %g", p.Mean())
	}
	if p.Exceeding(4) != 0.5 || p.Exceeding(8) != 0 {
		t.Errorf("exceeding = %g / %g", p.Exceeding(4), p.Exceeding(8))
	}
}

func TestMeasureSSODBIWireCounts(t *testing.T) {
	// An inverted beat from idle flips the DBI wire too.
	w := bus.Apply(bus.Burst{0xFF}, []bool{true}) // wire 0x00, DBI falls
	p, err := MeasureSSO([]bus.LineState{bus.InitialLineState}, []bus.Wire{w})
	if err != nil {
		t.Fatal(err)
	}
	if p.Max != 9 {
		t.Errorf("max = %d, want 9 (8 data + DBI)", p.Max)
	}
}

func TestMeasureSSOMultiLane(t *testing.T) {
	// Two lanes switching everything at once add up.
	w := bus.Apply(bus.Burst{0x00}, []bool{false})
	p, err := MeasureSSO(
		[]bus.LineState{bus.InitialLineState, bus.InitialLineState},
		[]bus.Wire{w, w})
	if err != nil {
		t.Fatal(err)
	}
	if p.Max != 16 {
		t.Errorf("max = %d, want 16", p.Max)
	}
}

func TestMeasureSSOValidation(t *testing.T) {
	w1 := bus.Apply(bus.Burst{0}, []bool{false})
	w2 := bus.Apply(bus.Burst{0, 0}, []bool{false, false})
	if _, err := MeasureSSO([]bus.LineState{bus.InitialLineState}, []bus.Wire{w1, w2}); err == nil {
		t.Error("state/lane mismatch accepted")
	}
	if _, err := MeasureSSO([]bus.LineState{bus.InitialLineState, bus.InitialLineState},
		[]bus.Wire{w1, w2}); err == nil {
		t.Error("beat mismatch accepted")
	}
	p, err := MeasureSSO(nil, nil)
	if err != nil || p.Beats != 0 || p.Mean() != 0 || p.Exceeding(0) != 0 {
		t.Errorf("empty profile: %+v, %v", p, err)
	}
}
