package phy

import "fmt"

// LoadModel composes the unified per-wire load capacitance the way CACTI-IO
// does: the driver's effective output capacitance, the input capacitance of
// every memory device sharing the wire, the PCB trace, and (for DIMM-style
// systems) the socket. The paper's §IV-A cites the typical values the
// defaults below use: ~2 pF for a DDR4 output driver, ~1.3 pF for a GDDR5
// driver, ~1 pF per memory device input, and "a few additional pF" of trace
// and socket.
type LoadModel struct {
	// Driver is the CPU/GPU pad and driver capacitance in farads.
	Driver float64
	// PerDevice is each memory device's input capacitance in farads.
	PerDevice float64
	// Devices is the number of devices sharing the wire (1 for
	// point-to-point GDDR, more for multi-drop DIMM ranks).
	Devices int
	// Trace is the PCB interconnect capacitance in farads.
	Trace float64
	// Socket is the DIMM socket capacitance in farads (0 for soldered
	// memory).
	Socket float64
}

// GDDR5Load returns a point-to-point graphics memory load: 1.3 pF driver
// (Amirkhany et al.), one device, a short trace.
func GDDR5Load() LoadModel {
	return LoadModel{Driver: 1.3 * PicoFarad, PerDevice: 1.0 * PicoFarad, Devices: 1, Trace: 0.7 * PicoFarad}
}

// DDR4DIMMLoad returns a socketed DDR4 load with the given number of
// devices on the wire: 2 pF driver (CACTI-IO), 1 pF per device, trace and
// socket.
func DDR4DIMMLoad(devices int) LoadModel {
	return LoadModel{Driver: 2.0 * PicoFarad, PerDevice: 1.0 * PicoFarad, Devices: devices,
		Trace: 1.0 * PicoFarad, Socket: 0.8 * PicoFarad}
}

// Validate reports an error for non-physical loads.
func (m LoadModel) Validate() error {
	if m.Driver < 0 || m.PerDevice < 0 || m.Trace < 0 || m.Socket < 0 {
		return fmt.Errorf("phy: load capacitances must be non-negative: %+v", m)
	}
	if m.Devices < 0 {
		return fmt.Errorf("phy: device count must be non-negative, got %d", m.Devices)
	}
	return nil
}

// Total returns the unified load capacitance in farads, the Cload the Link
// model consumes.
func (m LoadModel) Total() float64 {
	return m.Driver + float64(m.Devices)*m.PerDevice + m.Trace + m.Socket
}

// Link builds a POD link at the given supply voltage and data rate using
// this load.
func (m LoadModel) Link(vddq, dataRate float64) Link {
	return Link{VDDQ: vddq, Rpullup: DefaultRpullup, Rpulldown: DefaultRpulldown,
		Cload: m.Total(), DataRate: dataRate}
}
