package phy

import (
	"math"
	"testing"
)

func TestLoadModelTotals(t *testing.T) {
	g := GDDR5Load()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1.3 + 1.0 + 0.7 = 3.0 pF — the paper's Fig. 7 operating load.
	if math.Abs(g.Total()-3*PicoFarad) > 1e-18 {
		t.Errorf("GDDR5 load = %g pF, want 3", g.Total()/PicoFarad)
	}
	d := DDR4DIMMLoad(2)
	// 2 + 2*1 + 1 + 0.8 = 5.8 pF
	if math.Abs(d.Total()-5.8*PicoFarad) > 1e-18 {
		t.Errorf("DDR4 2-device load = %g pF", d.Total()/PicoFarad)
	}
}

func TestLoadModelMoreDevicesMoreLoad(t *testing.T) {
	if !(DDR4DIMMLoad(4).Total() > DDR4DIMMLoad(1).Total()) {
		t.Error("load must grow with device count")
	}
}

func TestLoadModelLink(t *testing.T) {
	l := GDDR5Load().Link(1.35, 12*Gbps)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Cload != GDDR5Load().Total() {
		t.Error("link did not take the composed load")
	}
	if l.VDDQ != 1.35 || l.DataRate != 12*Gbps {
		t.Error("link operating point wrong")
	}
	// Heavier loads make transitions pricier on the resulting link.
	heavy := DDR4DIMMLoad(4).Link(1.2, 12*Gbps)
	light := GDDR5Load().Link(1.2, 12*Gbps)
	if !(heavy.Etransition() > light.Etransition()) {
		t.Error("heavier load should raise Etransition")
	}
}

func TestLoadModelValidate(t *testing.T) {
	bad := []LoadModel{
		{Driver: -1},
		{PerDevice: -1},
		{Trace: -1},
		{Socket: -1},
		{Devices: -1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad load accepted: %+v", m)
		}
	}
	if err := (LoadModel{}).Validate(); err != nil {
		t.Errorf("zero load should be valid (soldered zero-load limit): %v", err)
	}
}
