package phy

import (
	"fmt"

	"dbiopt/internal/bus"
)

// SSOProfile summarises simultaneous switching output (SSO) activity across
// a group of byte lanes: how many wires toggle on the same beat edge. SSO
// drives the di/dt noise on the supply network (the SSN problem of Kim et
// al. that DBI coding was partly introduced to tame — see the paper's
// related work): the worst beat sets the noise budget, the mean sets the
// average supply ripple.
type SSOProfile struct {
	// Beats is the number of beat edges profiled.
	Beats int
	// Max is the largest number of wires that switched on one edge.
	Max int
	// Hist[k] is the number of edges on which exactly k wires switched.
	Hist []int
	// Total is the total transition count (the same quantity the energy
	// model charges).
	Total int
}

// Mean returns the average simultaneous-switching count per edge.
func (p SSOProfile) Mean() float64 {
	if p.Beats == 0 {
		return 0
	}
	return float64(p.Total) / float64(p.Beats)
}

// Exceeding returns the fraction of edges on which more than k wires
// switched simultaneously.
func (p SSOProfile) Exceeding(k int) float64 {
	if p.Beats == 0 {
		return 0
	}
	n := 0
	for i := k + 1; i < len(p.Hist); i++ {
		n += p.Hist[i]
	}
	return float64(n) / float64(p.Beats)
}

// MeasureSSO profiles the simultaneous switching of a group of lanes
// transmitting in lockstep, starting from the given per-lane line states.
// All wire images must have the same number of beats. DBI wires are
// included, as they switch on the same edges.
func MeasureSSO(prev []bus.LineState, wires []bus.Wire) (SSOProfile, error) {
	if len(prev) != len(wires) {
		return SSOProfile{}, fmt.Errorf("phy: %d states for %d lanes", len(prev), len(wires))
	}
	if len(wires) == 0 {
		return SSOProfile{}, nil
	}
	beats := wires[0].Len()
	for l, w := range wires {
		if w.Len() != beats {
			return SSOProfile{}, fmt.Errorf("phy: lane %d has %d beats, lane 0 has %d", l, w.Len(), beats)
		}
	}
	p := SSOProfile{Beats: beats, Hist: make([]int, len(wires)*bus.WiresPerLane+1)}
	states := append([]bus.LineState(nil), prev...)
	for t := 0; t < beats; t++ {
		switching := 0
		for l, w := range wires {
			s := states[l]
			switching += bus.Transitions(s.Data, w.Data[t])
			dbi := 0
			if w.DBI[t] {
				dbi = 1
			}
			prevDBI := 0
			if s.DBI {
				prevDBI = 1
			}
			if dbi != prevDBI {
				switching++
			}
			states[l] = bus.LineState{Data: w.Data[t], DBI: w.DBI[t]}
		}
		p.Hist[switching]++
		p.Total += switching
		if switching > p.Max {
			p.Max = switching
		}
	}
	return p, nil
}
