// bench_test.go holds one benchmark per table and figure of the paper's
// evaluation (the regeneration targets listed in DESIGN.md §4) plus
// micro-benchmarks of every encoder. The figure benches run the exact
// experiment pipeline on a reduced burst count; the unit tests in
// internal/experiments pin the *numbers*, these pin the *cost* of
// regenerating them.
package dbiopt_test

import (
	"fmt"
	"testing"

	"dbiopt"
	"dbiopt/internal/bus"
	"dbiopt/internal/dbi"
	"dbiopt/internal/experiments"
	"dbiopt/internal/hw"
	"dbiopt/internal/memctrl"
	"dbiopt/internal/phy"
	"dbiopt/internal/trace"
)

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Bursts = 500
	cfg.Steps = 20
	return cfg
}

// BenchmarkFig2 regenerates the worked example (per-scheme costs plus the
// exhaustive Pareto enumeration over all 256 patterns).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2()
		if len(r.Pareto) != 5 {
			b.Fatal("wrong pareto front")
		}
	}
}

// BenchmarkFig3 regenerates the energy-vs-alpha sweep for RAW/DC/AC/OPT.
func BenchmarkFig3(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 adds the fixed-coefficient series.
func BenchmarkFig4(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 runs the full synthesis-style estimation of the four
// hardware designs (netlist construction, STA, activity simulation).
func BenchmarkTable1(b *testing.B) {
	cfg := hw.DefaultSynthesisConfig()
	cfg.ActivityBursts = 200
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(8, cfg)
		if len(r.Reports) != 4 {
			b.Fatal("wrong report count")
		}
	}
}

// BenchmarkFig7 regenerates the normalised-energy-vs-data-rate sweep.
func BenchmarkFig7(b *testing.B) {
	cfg := experiments.DefaultRateSweepConfig()
	cfg.Config = benchConfig()
	cfg.StepRate = 2 * phy.Gbps
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates the encoding-energy-inclusive sweep across load
// capacitances (the synthesis inputs are computed once, as in the paper).
func BenchmarkFig8(b *testing.B) {
	cfg := experiments.DefaultRateSweepConfig()
	cfg.Config = benchConfig()
	cfg.StepRate = 2 * phy.Gbps
	synthCfg := hw.DefaultSynthesisConfig()
	synthCfg.ActivityBursts = 200
	synth := experiments.Table1(8, synthCfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(cfg, []float64{1, 3, 8}, synth); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCoeffBits regenerates the coefficient-width ablation
// (why 3-bit coefficients suffice).
func BenchmarkAblationCoeffBits(b *testing.B) {
	cfg := benchConfig()
	cfg.Bursts = 200
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CoefficientBitsAblation(cfg, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGreedyGap regenerates the greedy-vs-optimal gap study.
func BenchmarkAblationGreedyGap(b *testing.B) {
	cfg := benchConfig()
	cfg.Bursts = 200
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GreedyGapAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBurstLength regenerates the burst-length scaling study.
func BenchmarkAblationBurstLength(b *testing.B) {
	cfg := benchConfig()
	cfg.Bursts = 200
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BurstLengthAblation(cfg, []int{2, 4, 8, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWindow regenerates the cross-burst joint-encoding study.
func BenchmarkAblationWindow(b *testing.B) {
	cfg := benchConfig()
	cfg.Bursts = 400
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WindowAblation(cfg, []int{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetlistOptimize measures the logic-cleanup passes on the largest
// design.
func BenchmarkNetlistOptimize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := hw.BuildOpt3Bit(8).Netlist
		if hw.Optimize(n).GateCount() == 0 {
			b.Fatal("optimizer destroyed the design")
		}
	}
}

// BenchmarkEncoders measures the per-burst cost of every registered coding
// scheme on the same random workload — the software-throughput view of
// Table I. It drives the steady-state EncodeInto path with a reused
// scratch buffer, so B/op is 0 for every scheme; the Encode convenience
// wrapper adds exactly one slice allocation on top of these numbers.
func BenchmarkEncoders(b *testing.B) {
	src := trace.NewUniform(1)
	workload := make([]bus.Burst, 1024)
	for i := range workload {
		workload[i] = src.Next(bus.BurstLength)
	}
	// The built-in schemes, pinned by name: dbi.Names() would also pick up
	// whatever the tests registered earlier in the same process (CI runs
	// tests and benchmarks in one `go test -bench` invocation).
	builtins := []string{"RAW", "DC", "AC", "ACDC", "GREEDY", "OPT", "OPT-FIXED", "QUANTISED", "EXHAUSTIVE"}
	for _, name := range builtins {
		w := dbi.FixedWeights
		if name == "QUANTISED" {
			w = dbi.Weights{Alpha: 3, Beta: 5}
		}
		enc, err := dbi.Lookup(name, w)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var inv []bool
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				inv = enc.EncodeInto(inv[:0], bus.InitialLineState, workload[i%len(workload)])
			}
		})
	}
}

// BenchmarkKernelEncode measures the compiled kernels' standalone cost path
// (Kernel.Advance) for every built-in scheme — the accounting step the
// adaptive shadow chains and the parallel cost drivers run per burst. The
// narrow 8-beat path stays in registers, so B/op is 0 for every scheme.
func BenchmarkKernelEncode(b *testing.B) {
	src := trace.NewUniform(9)
	workload := make([]dbiopt.Burst, 1024)
	for i := range workload {
		workload[i] = dbiopt.Burst(src.Next(dbiopt.BurstLength))
	}
	builtins := []string{"RAW", "DC", "AC", "ACDC", "GREEDY", "OPT", "OPT-FIXED", "QUANTISED", "EXHAUSTIVE"}
	for _, name := range builtins {
		w := dbi.FixedWeights
		if name == "QUANTISED" {
			w = dbi.Weights{Alpha: 3, Beta: 5}
		}
		kern, err := dbiopt.CompileScheme(name, w, dbiopt.Geometry{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			prev := dbiopt.InitialLineState
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, prev = kern.Advance(prev, workload[i%len(workload)])
			}
		})
	}
}

// BenchmarkCompile measures the one-time cost of the scheme compiler: what
// a consumer pays per distinct (scheme, weights, geometry) triple. The
// fresh sub-benchmark compiles an already-constructed encoder every
// iteration (the uncached worst case); cached hits the LookupKernel memo,
// the cost every consumer after the first actually sees.
func BenchmarkCompile(b *testing.B) {
	b.Run("fresh", func(b *testing.B) {
		enc, err := dbi.Lookup("OPT", dbi.Weights{Alpha: 3, Beta: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if dbi.CompileEncoder(enc, dbi.Geometry{}) == nil {
				b.Fatal("nil kernel")
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k, err := dbiopt.CompileScheme("OPT-FIXED", dbi.FixedWeights, dbiopt.Geometry{})
			if err != nil || k == nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStream measures streaming encoding through the public API, the
// steady-state path of a PHY.
func BenchmarkStream(b *testing.B) {
	src := trace.NewUniform(2)
	workload := make([]dbiopt.Burst, 1024)
	for i := range workload {
		workload[i] = dbiopt.Burst(src.Next(dbiopt.BurstLength))
	}
	st := dbiopt.NewStream(dbiopt.OptFixed())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Transmit(workload[i%len(workload)])
	}
}

// BenchmarkAdaptiveStream measures the adaptive streaming path: the live
// encode plus one shadow encode per challenger plus the window accounting,
// on a phase-shifting workload. B/op must stay 0 — adaptation rides the
// same scratch-reuse discipline as the static stream (pinned by
// TestAdaptiveStreamZeroAlloc in internal/adapt).
func BenchmarkAdaptiveStream(b *testing.B) {
	src := trace.NewPhaseShift(512, trace.NewSparse(6, 0.10), trace.NewMarkov(7, 0.05))
	workload := make([]dbiopt.Burst, 2048)
	for i := range workload {
		workload[i] = dbiopt.Burst(src.Next(dbiopt.BurstLength))
	}
	st, err := dbiopt.NewAdaptiveStream(dbiopt.AdaptiveConfig{
		Candidates: []string{"DC", "AC", "OPT-FIXED"},
		Weights:    dbiopt.Weights{Alpha: 4, Beta: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Transmit(workload[i%len(workload)])
	}
}

// pipelineWorkload synthesises a fixed multi-lane trace for the pipeline
// benchmarks: enough frames that sharding overhead amortises, deterministic
// so serial and parallel runs see identical work.
func pipelineWorkload(lanes, frames int) []dbiopt.Frame {
	src := trace.NewUniform(5)
	out := make([]dbiopt.Frame, frames)
	for i := range out {
		f := make(dbiopt.Frame, lanes)
		for l := range f {
			f[l] = dbiopt.Burst(src.Next(dbiopt.BurstLength))
		}
		out[i] = f
	}
	return out
}

// BenchmarkLaneSet is the serial baseline the pipeline benchmarks compare
// against: one LaneSet replaying the same synthetic traces.
func BenchmarkLaneSet(b *testing.B) {
	for _, lanes := range []int{8, 16, 32} {
		const frames = 512
		workload := pipelineWorkload(lanes, frames)
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			b.SetBytes(int64(lanes * dbiopt.BurstLength * frames))
			for i := 0; i < b.N; i++ {
				ls := dbiopt.NewLaneSet(dbiopt.OptFixed(), lanes)
				for _, f := range workload {
					ls.Transmit(f)
				}
				if ls.TotalCost() == (dbiopt.Cost{}) {
					b.Fatal("no activity")
				}
			}
		})
	}
}

// BenchmarkLaneBatch compares the two frame-level encode paths on an
// 8-lane bus carrying 64-beat bursts: serial (one Stream.Transmit per
// lane, wire images built) and batch (one LaneSet.TransmitBatch per frame
// — struct-of-arrays lanes, word-packed masks, no wire images). The batch
// path is the serving tier's frame loop; ns/burst is the per-lane figure
// to compare between the sub-benchmarks. Both paths allocate nothing in
// steady state.
func BenchmarkLaneBatch(b *testing.B) {
	const lanes, frames, beats = 8, 256, 64
	src := trace.NewUniform(5)
	workload := make([]dbiopt.Frame, frames)
	for i := range workload {
		f := make(dbiopt.Frame, lanes)
		for l := range f {
			f[l] = dbiopt.Burst(src.Next(beats))
		}
		workload[i] = f
	}
	for _, name := range []string{"DC", "ACDC", "GREEDY", "OPT-FIXED"} {
		enc, err := dbiopt.NewEncoder(name, dbiopt.Weights{Alpha: 1, Beta: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/serial", func(b *testing.B) {
			ls := dbiopt.NewLaneSet(enc, lanes)
			b.SetBytes(int64(lanes * beats))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ls.Transmit(workload[i%frames])
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lanes), "ns/burst")
		})
		b.Run(name+"/batch", func(b *testing.B) {
			ls := dbiopt.NewLaneSet(enc, lanes)
			b.SetBytes(int64(lanes * beats))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ls.TransmitBatch(workload[i%frames])
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lanes), "ns/burst")
		})
	}
}

// BenchmarkWideMask measures Stream.Transmit past the single-word mask
// bound, where the multi-word WideMask path keeps the encode mask-native
// (and, within MaxInlineWideBeats, allocation-free) instead of falling
// back to the per-beat []bool walk.
func BenchmarkWideMask(b *testing.B) {
	for _, name := range []string{"DC", "OPT-FIXED"} {
		enc, err := dbiopt.NewEncoder(name, dbiopt.Weights{Alpha: 1, Beta: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, beats := range []int{128, 256} {
			b.Run(fmt.Sprintf("%s/beats=%d", name, beats), func(b *testing.B) {
				src := trace.NewUniform(11)
				workload := make([]dbiopt.Burst, 256)
				for i := range workload {
					workload[i] = dbiopt.Burst(src.Next(beats))
				}
				st := dbiopt.NewStream(enc)
				b.SetBytes(int64(beats))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st.Transmit(workload[i%len(workload)])
				}
			})
		}
	}
}

// BenchmarkPipeline measures the sharded streaming pipeline across lane and
// worker counts on the same workloads as BenchmarkLaneSet. With idle cores
// available, throughput scales near-linearly in workers until workers
// reaches the lane count (lanes are the sharding unit); compare
// lanes=32/workers=8 against BenchmarkLaneSet/lanes=32 for the headline
// speedup.
func BenchmarkPipeline(b *testing.B) {
	for _, lanes := range []int{8, 16, 32} {
		const frames = 512
		workload := pipelineWorkload(lanes, frames)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("lanes=%d/workers=%d", lanes, workers), func(b *testing.B) {
				p := dbiopt.NewPipeline(dbiopt.OptFixed(), lanes, dbiopt.WithWorkers(workers))
				b.SetBytes(int64(lanes * dbiopt.BurstLength * frames))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := p.Run(dbiopt.FramesOf(workload))
					if err != nil {
						b.Fatal(err)
					}
					if res.Total == (dbiopt.Cost{}) {
						b.Fatal("no activity")
					}
				}
			})
		}
	}
}

// startLoopbackServer boots a dbiserve instance on an ephemeral loopback
// port for the serving benchmarks.
func startLoopbackServer(b *testing.B, workers int) *dbiopt.Server {
	b.Helper()
	srv, err := dbiopt.Serve(dbiopt.ServerConfig{Addr: "127.0.0.1:0", Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv
}

// BenchmarkServeFrame is the loopback load generator for the single-frame
// serving path: one session streaming frames over TCP and reading back the
// inversion masks. The round trip includes both sides of the protocol, so
// B/op covers client serialisation, kernel crossings, and the server's
// steady-state encode (which itself allocates nothing per burst — pinned by
// TestServeFrameZeroAlloc in internal/server). ns_per_burst is the serving
// cost to compare against BenchmarkStream's offline number.
func BenchmarkServeFrame(b *testing.B) {
	for _, lanes := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			srv := startLoopbackServer(b, 0)
			c, err := dbiopt.Dial(srv.Addr().String(), dbiopt.SessionConfig{
				Scheme: "OPT-FIXED", Lanes: lanes, Beats: dbiopt.BurstLength,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			workload := pipelineWorkload(lanes, 256)
			b.SetBytes(int64(lanes * dbiopt.BurstLength))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.EncodeFrame(workload[i%len(workload)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lanes), "ns/burst")
		})
	}
}

// BenchmarkServeBatch measures the batched serving path: whole traces per
// message, encoded through the server's lane-sharded pipeline. This is the
// throughput shape a memory-trace processing service would run.
func BenchmarkServeBatch(b *testing.B) {
	const lanes, frames = 8, 256
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			srv := startLoopbackServer(b, workers)
			c, err := dbiopt.Dial(srv.Addr().String(), dbiopt.SessionConfig{
				Scheme: "OPT-FIXED", Lanes: lanes, Beats: dbiopt.BurstLength,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			workload := pipelineWorkload(lanes, frames)
			b.SetBytes(int64(lanes * dbiopt.BurstLength * frames))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.EncodeBatch(workload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lanes*frames), "ns/burst")
		})
	}
}

// BenchmarkHardwareSim measures one gate-level evaluation of the Fig. 5
// fixed-coefficient netlist.
func BenchmarkHardwareSim(b *testing.B) {
	d := hw.BuildOptFixed(8)
	sim := hw.NewSimulator(d.Netlist)
	src := trace.NewUniform(3)
	workload := make([]bus.Burst, 256)
	for i := range workload {
		workload[i] = src.Next(8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Encode(sim, bus.InitialLineState, workload[i%len(workload)])
	}
}

// BenchmarkMemChannel measures the end-to-end memory-channel write path
// with optimal coding.
func BenchmarkMemChannel(b *testing.B) {
	link := phy.POD135(3*phy.PicoFarad, 12*phy.Gbps)
	enc, err := dbi.Lookup("OPT-FIXED", dbi.FixedWeights)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := memctrl.NewController(memctrl.DefaultGeometry(), memctrl.GDDR5Timing(), link, enc)
	if err != nil {
		b.Fatal(err)
	}
	size := memctrl.DefaultGeometry().BurstBytes(memctrl.GDDR5Timing())
	src := trace.NewUniform(4)
	data := make([][]byte, 64)
	for i := range data {
		data[i] = src.Next(size)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.Submit(memctrl.Request{Addr: uint64(i%1024) * uint64(size), Write: true, Data: data[i%len(data)]}); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			ctl.Drain()
		}
	}
	ctl.Drain()
}
