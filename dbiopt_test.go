package dbiopt

import (
	"fmt"
	"math/rand"
	"testing"

	"dbiopt/internal/trace"
)

// TestFacadeFig2 drives the paper's worked example purely through the
// public API.
func TestFacadeFig2(t *testing.T) {
	b := Burst{0x8E, 0x86, 0x96, 0xE9, 0x7D, 0xB7, 0x57, 0xC4}
	if c := CostOf(DC(), InitialLineState, b); c != (Cost{Zeros: 26, Transitions: 42}) {
		t.Errorf("DC = %+v", c)
	}
	if c := CostOf(AC(), InitialLineState, b); c != (Cost{Zeros: 43, Transitions: 22}) {
		t.Errorf("AC = %+v", c)
	}
	if c := CostOf(OptFixed(), InitialLineState, b); c.Zeros+c.Transitions != 52 {
		t.Errorf("OptFixed total = %d", c.Zeros+c.Transitions)
	}
	if front := ParetoFront(InitialLineState, b); len(front) != 5 {
		t.Errorf("pareto front = %v", front)
	}
}

// TestFacadeRoundTrip: decode(encode(x)) == x through the facade for all
// constructors.
func TestFacadeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	q, err := OptQuantized(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	encoders := []Encoder{Raw(), DC(), AC(), ACDC(), Greedy(Weights{Alpha: 1, Beta: 2}), Opt(Weights{Alpha: 1, Beta: 2}), OptFixed(), q}
	for _, enc := range encoders {
		for trial := 0; trial < 50; trial++ {
			b := make(Burst, 8)
			for i := range b {
				b[i] = byte(rng.Intn(256))
			}
			w := Encode(enc, InitialLineState, b)
			if got := Decode(w); !got.Equal(b) {
				t.Fatalf("%s: round trip failed", enc.Name())
			}
		}
	}
}

// TestFacadeLinkAndStream: end-to-end energy accounting via the facade.
func TestFacadeLinkAndStream(t *testing.T) {
	link := POD135(3*PicoFarad, 12*Gbps)
	if err := link.Validate(); err != nil {
		t.Fatal(err)
	}
	st := NewStream(Opt(link.Weights()))
	raw := NewStream(Raw())
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 100; i++ {
		b := make(Burst, BurstLength)
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		st.Transmit(b)
		raw.Transmit(b)
	}
	if e, r := link.BurstEnergy(st.TotalCost()), link.BurstEnergy(raw.TotalCost()); e >= r {
		t.Errorf("OPT energy %g >= RAW energy %g", e, r)
	}
}

// TestFacadeRegistry: names round-trip through NewEncoder, and the error
// paths — unknown names, invalid weights, out-of-range coefficients,
// duplicate registration — surface through the facade exactly as the
// internal registry reports them.
func TestFacadeRegistry(t *testing.T) {
	for _, name := range SchemeNames() {
		if _, err := NewEncoder(name, Weights{Alpha: 1, Beta: 1}); err != nil {
			t.Errorf("NewEncoder(%q): %v", name, err)
		}
	}
	if _, err := NewEncoder("NOPE", Weights{}); err == nil {
		t.Error("bogus name accepted")
	}
	for _, name := range []string{"GREEDY", "OPT", "QUANTISED"} {
		if _, err := NewEncoder(name, Weights{}); err == nil {
			t.Errorf("NewEncoder(%q) accepted zero weights", name)
		}
		if _, err := NewEncoder(name, Weights{Alpha: -1, Beta: 1}); err == nil {
			t.Errorf("NewEncoder(%q) accepted negative weights", name)
		}
	}
	if _, err := OptQuantized(9, 1); err == nil {
		t.Error("out-of-range coefficient accepted")
	}
	if _, err := OptQuantized(0, 0); err == nil {
		t.Error("all-zero coefficients accepted")
	}
	// Duplicate registration is a programming error and panics, also
	// through the facade wrapper. The name is derived from the registry
	// size so repeated runs of the test binary (-count > 1) stay unique.
	name := fmt.Sprintf("TEST-FACADE-DUP-%d", len(SchemeNames()))
	RegisterScheme(name, func(w Weights) (Encoder, error) { return Raw(), nil })
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterScheme did not panic")
		}
	}()
	RegisterScheme(name, func(w Weights) (Encoder, error) { return Raw(), nil })
}

// TestFacadePipeline: the sharded pipeline through the facade matches a
// serial LaneSet replay for every named scheme.
func TestFacadePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	const lanes, frames = 5, 8
	fs := make([]Frame, frames)
	for i := range fs {
		f := make(Frame, lanes)
		for l := range f {
			f[l] = make(Burst, BurstLength)
			for j := range f[l] {
				f[l][j] = byte(rng.Intn(256))
			}
		}
		fs[i] = f
	}
	for _, name := range SchemeNames() {
		enc, err := NewEncoder(name, Weights{Alpha: 1, Beta: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !StatelessEncoder(enc) {
			t.Errorf("%s unexpectedly stateful", name)
		}
		ls := NewLaneSet(enc, lanes)
		for _, f := range fs {
			ls.Transmit(f)
		}
		p := NewPipeline(enc, lanes, WithWorkers(3), WithChunkFrames(2))
		res, err := p.Run(FramesOf(fs))
		if err != nil {
			t.Fatal(err)
		}
		if res.Total != ls.TotalCost() {
			t.Errorf("%s: pipeline %+v != laneset %+v", name, res.Total, ls.TotalCost())
		}
	}
}

// TestFacadeServe: the serving layer through the facade — Serve a loopback
// instance, Dial a session, and check the served wire images and totals
// against a local LaneSet with the same scheme.
func TestFacadeServe(t *testing.T) {
	srv, err := Serve(ServerConfig{Addr: "127.0.0.1:0", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const lanes, frames = 2, 12
	c, err := Dial(srv.Addr().String(), SessionConfig{Scheme: "OPT-FIXED", Lanes: lanes, Beats: BurstLength})
	if err != nil {
		t.Fatal(err)
	}
	if c.Scheme() != "OPT-FIXED" {
		t.Fatalf("resolved scheme %q", c.Scheme())
	}

	rng := rand.New(rand.NewSource(63))
	fs := make([]Frame, frames)
	for i := range fs {
		f := make(Frame, lanes)
		for l := range f {
			f[l] = make(Burst, BurstLength)
			for j := range f[l] {
				f[l][j] = byte(rng.Intn(256))
			}
		}
		fs[i] = f
	}
	ls := NewLaneSet(OptFixed(), lanes)
	for _, f := range fs[:4] {
		wires, err := c.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		want := ls.Transmit(f)
		for l := range want {
			if wires[l].String() != want[l].String() {
				t.Fatalf("lane %d: served %s != local %s", l, wires[l], want[l])
			}
		}
	}
	if _, err := c.EncodeBatch(fs[4:]); err != nil {
		t.Fatal(err)
	}
	for _, f := range fs[4:] {
		ls.Transmit(f)
	}
	totals, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if totals.Coded != ls.TotalCost() {
		t.Fatalf("served totals %+v != local LaneSet %+v", totals.Coded, ls.TotalCost())
	}
	if totals.Frames != frames {
		t.Fatalf("frames = %d, want %d", totals.Frames, frames)
	}
}

// TestFacadeLaneSet: multi-lane transmission through the facade.
func TestFacadeLaneSet(t *testing.T) {
	ls := NewLaneSet(OptFixed(), 4)
	f := Frame{make(Burst, 8), make(Burst, 8), make(Burst, 8), make(Burst, 8)}
	for l := range f {
		for i := range f[l] {
			f[l][i] = byte(l*8 + i)
		}
	}
	ws := ls.Transmit(f)
	if len(ws) != 4 {
		t.Fatalf("got %d wires", len(ws))
	}
	for l, w := range ws {
		if got := Decode(w); !got.Equal(f[l]) {
			t.Fatalf("lane %d corrupted", l)
		}
	}
	pods := []Link{POD12(PicoFarad, Gbps), POD15(PicoFarad, Gbps)}
	for _, p := range pods {
		if p.BurstEnergy(ls.TotalCost()) <= 0 {
			t.Error("non-positive energy")
		}
	}
}

// TestFacadeAdaptive: the adaptive layer through the public API — an
// adaptive stream beats a mis-matched static scheme on shifting traffic,
// the lane-set constructor stamps lanes, and a served adaptive session is
// bit-identical to the offline adaptive lane set and announces its
// switches.
func TestFacadeAdaptive(t *testing.T) {
	const lanes, beats, period, frames = 2, 8, 256, 1536
	weights := Weights{Alpha: 4, Beta: 1}
	cfg := AdaptiveConfig{
		Candidates: []string{"DC", "AC", "RAW"},
		Weights:    weights,
		Window:     32,
		Margin:     0.05,
	}

	// Per-lane phase-shifting workload.
	fs := make([]Frame, frames)
	srcs := make([]trace.Source, lanes)
	for l := range srcs {
		seed := int64(77 + 100*l)
		srcs[l] = trace.NewPhaseShift(period, trace.NewSparse(seed, 0.10), trace.NewMarkov(seed+1, 0.05))
	}
	for i := range fs {
		f := make(Frame, lanes)
		for l := range f {
			f[l] = Burst(srcs[l].Next(beats))
		}
		fs[i] = f
	}

	var switches []AdaptiveSwitch
	laneCfg := cfg
	laneCfg.OnSwitch = func(s AdaptiveSwitch) { switches = append(switches, s) }
	ls, err := NewAdaptiveLaneSet(laneCfg, lanes)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		ls.Transmit(f)
	}
	if len(switches) == 0 {
		t.Fatal("no switches on a phase-shifting workload")
	}
	for _, s := range switches {
		if s.Lane < 0 || s.Lane >= lanes {
			t.Fatalf("switch names lane %d", s.Lane)
		}
	}
	ctl := AdapterOf(ls.Lane(0)).(*AdaptiveController)
	if ctl.Switches() == 0 {
		t.Error("lane 0 controller reports no switches")
	}

	// Served adaptively: same config, same frames, bit-identical totals
	// plus SWITCH notices.
	srv, err := Serve(ServerConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr().String(), SessionConfig{
		Adapt: true, AdaptWindow: cfg.Window, AdaptMargin: cfg.Margin, AdaptCandidates: cfg.Candidates,
		Alpha: weights.Alpha, Beta: weights.Beta, Lanes: lanes, Beats: beats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EncodeBatch(fs); err != nil {
		t.Fatal(err)
	}
	totals, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if totals.Coded != ls.TotalCost() {
		t.Fatalf("served adaptive totals %+v != offline %+v", totals.Coded, ls.TotalCost())
	}
	if totals.Switches != len(switches) {
		t.Errorf("served session switched %d times, offline %d", totals.Switches, len(switches))
	}
	if notes := c.Switches(); len(notes) != totals.Switches {
		t.Errorf("received %d SWITCH notices, totals say %d", len(notes), totals.Switches)
	}

	// And the point of it all: adaptive beats the mis-matched static
	// schemes on this traffic.
	adaptiveCost := weights.Cost(ls.TotalCost())
	for _, name := range cfg.Candidates {
		enc, err := NewEncoder(name, weights)
		if err != nil {
			t.Fatal(err)
		}
		static := NewLaneSet(enc, lanes)
		for _, f := range fs {
			static.Transmit(f)
		}
		if staticCost := weights.Cost(static.TotalCost()); adaptiveCost >= staticCost {
			t.Errorf("adaptive cost %.0f not below static %s %.0f", adaptiveCost, name, staticCost)
		}
	}
}
